"""Specializing profiling interpreter, bit-exact with the reference
:class:`~repro.ir.interp.Interpreter`.

Profiling interpretation dominates ``compile_module`` (the pipeline replays
the optimized module for up to ``profile_step_limit`` steps to gather block
weights and branch bias), so this engine applies the PR 3 fast-path playbook
to the IR level: for each function it generates one Python function whose
body inlines operand resolution (virtual registers become local variables),
ALU arithmetic (via the shared :mod:`repro.isa.inline` emitter), branch
conditions, and all profile bookkeeping (dense per-block counter arrays
instead of ``Counter`` updates keyed by tuples).  Calls become direct Python
calls, so the reference engine's explicit frame stack disappears entirely.

Bit-exactness contract (asserted by ``tests/test_fastinterp.py``):

* ``InterpResult.steps`` and the final memory image equal the reference's;
* the reconstructed :class:`~repro.ir.interp.Profile` compares equal —
  block counts, branch taken/not-taken pairs, and call counts;
* any run the generated code cannot finish **successfully** (undefined
  virtual-register read, step-limit overrun, opcode without IR semantics,
  recursion deeper than the Python stack, arithmetic fault) returns ``None``
  to the caller, which re-runs the reference engine from a fresh initial
  memory image so error messages and fault behavior are reference-defined
  down to the exact text.

Step accounting: steps are batched per block entry.  Entering a block
commits to executing exactly its transfer-terminated prefix, so adding the
prefix length up front and bounds-checking once is exact for every run the
fast path is allowed to complete (a mid-prefix fault or undefined read
triggers the reference re-run, which re-raises whatever the reference
semantics demand first).
"""

from __future__ import annotations

import re
import weakref

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.interp import InterpResult, Profile
from repro.isa.inline import BRANCH_EXPR, alu_stmts
from repro.isa.opcodes import Opcode
from repro.isa.registers import Imm, VReg
from repro.isa.semantics import ALU_FUNCS, BRANCH_FUNCS

__all__ = ["try_run"]

#: One-pass identifier scan used to decide which state names a generated
#: function needs bound as keyword defaults (mirrors sim.fastpath).
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


class _Unsupported(Exception):
    """Shape the generator cannot express for one instruction; the emitted
    code raises ``FB`` at that point instead, deferring to the reference."""


class _Fallback(Exception):
    """Raised by generated code when it cannot guarantee bit-exactness."""


class _Halt(Exception):
    """HALT executed inside an arbitrarily deep call chain; unwinds the
    generated Python frames back to the driver."""


def _transfer_prefix(block: BasicBlock) -> list | None:
    """Instructions executed per entry of *block*: everything up to and
    including the first control transfer, or ``None`` if the block falls
    off its end (the reference raises IRError there)."""
    for i, instr in enumerate(block.instrs):
        op = instr.op
        if (op is Opcode.JMP or op is Opcode.RET or op is Opcode.HALT
                or op in BRANCH_FUNCS):
            return block.instrs[:i + 1]
    return None


class _Codegen:
    """Generates one Python module of per-function run functions."""

    def __init__(self, module: Module, strict_loads: bool) -> None:
        self.module = module
        self.strict = strict_loads
        self.fn_index = {name: i for i, name in enumerate(module.functions)}
        self.consts: dict[str, object] = {}
        self.lines: list[str] = []
        #: Per function: (name, block names, per-block cond-branch flag).
        self.meta: list[tuple[str, tuple[str, ...], tuple[bool, ...]]] = []
        self._nconst = 0

    # -- operand emission ------------------------------------------------------

    def _const(self, value) -> str:
        name = f"K{self._nconst}"
        self._nconst += 1
        self.consts[name] = value
        return name

    def _imm_expr(self, value) -> str:
        if type(value) is int:
            return repr(value)
        return self._const(value)

    def _expr(self, operand, vnum: dict[VReg, int]) -> str:
        if isinstance(operand, Imm):
            return self._imm_expr(operand.value)
        if isinstance(operand, VReg):
            return f"v{vnum[operand]}"
        # Physical registers (or anything else) never appear in the
        # pre-allocation IR the profiler sees; defer to the reference.
        raise _Unsupported(f"operand {operand!r}")

    def _dest(self, instr, vnum: dict[VReg, int]) -> str:
        if not isinstance(instr.dest, VReg):
            raise _Unsupported(f"non-vreg dest {instr.dest!r}")
        return f"v{vnum[instr.dest]}"

    # -- per-instruction emission ----------------------------------------------

    def _emit_body_instr(self, w, ind: str, instr, vnum, fi: int) -> None:
        """Emit one non-transfer instruction (raises _Unsupported to make
        the caller truncate the block with a fallback raise)."""
        op = instr.op
        if op is Opcode.NOP:
            return
        if op is Opcode.LI or op is Opcode.LIF:
            w(ind + f"{self._dest(instr, vnum)} = "
                    f"{self._imm_expr(instr.imm)}")
        elif op is Opcode.LOAD or op is Opcode.FLOAD:
            dest = self._dest(instr, vnum)
            addr = (f"{self._expr(instr.srcs[0], vnum)} + "
                    f"{self._imm_expr(instr.imm)}")
            if self.strict:
                w(ind + f"{dest} = MEM.get({addr}, SL)")
                w(ind + f"if {dest} is SL: raise FB")
            else:
                w(ind + f"{dest} = MEM.get({addr}, 0)")
        elif op is Opcode.STORE or op is Opcode.FSTORE:
            val = self._expr(instr.srcs[0], vnum)
            addr = (f"{self._expr(instr.srcs[1], vnum)} + "
                    f"{self._imm_expr(instr.imm)}")
            w(ind + f"MEM[{addr}] = {val}")
        elif op is Opcode.CALL:
            self._emit_call(w, ind, instr, vnum)
        elif op in ALU_FUNCS:
            dest = self._dest(instr, vnum)
            vals = [self._expr(s, vnum) for s in instr.srcs]
            stmts = alu_stmts(op.name, vals, target=dest)
            if stmts is None:
                # DIV/REM/FDIV: call the exact semantics function object so
                # SimulationFault behavior is preserved (the driver still
                # re-runs the reference to surface the fault, but the call
                # keeps successful runs on the arbitrary-precision-correct
                # path).
                fname = f"OP_{op.name}"
                self.consts[fname] = ALU_FUNCS[op]
                w(ind + f"{dest} = {fname}({', '.join(vals)})")
            else:
                for s in stmts:
                    w(ind + s)
        else:
            # Connects, traps, PSW access: no IR-level semantics; the
            # reference raises a precise IRError.
            raise _Unsupported(f"opcode {op.value}")

    def _emit_call(self, w, ind: str, instr, vnum) -> None:
        ci = self.fn_index.get(instr.label)
        if ci is None:
            raise _Unsupported(f"call to unknown {instr.label!r}")
        callee = self.module.functions[instr.label]
        if len(instr.srcs) != len(callee.params):
            raise _Unsupported("call arity mismatch")
        args = ", ".join(self._expr(s, vnum) for s in instr.srcs)
        w(ind + f"CC[{ci}] += 1")
        if instr.dest is None:
            w(ind + f"F{ci}({args})")
            return
        dest = self._dest(instr, vnum)
        if any(i.op is Opcode.RET and not i.srcs
               for _, i in callee.iter_instrs()):
            # The callee has value-less returns; the reference raises
            # IRError when one reaches a caller expecting a value.
            w(ind + f"_r = F{ci}({args})")
            w(ind + "if _r is None: raise FB")
            w(ind + f"{dest} = _r")
        else:
            w(ind + f"{dest} = F{ci}({args})")

    # -- per-block emission ----------------------------------------------------

    def _emit_block(self, w, ind: str, fi: int, bi: int, block: BasicBlock,
                    fn: Function, vnum, bidx) -> bool:
        """Emit the code for one block; returns True when its executed
        prefix ends in a conditional branch (profile reconstruction)."""
        prefix = _transfer_prefix(block)
        body = block.instrs if prefix is None else prefix[:-1]
        term = None if prefix is None else prefix[-1]
        n = len(block.instrs) if prefix is None else len(prefix)

        is_cond = term is not None and term.op in BRANCH_EXPR_OPS
        taken_idx = None
        fall_idx = None
        if is_cond:
            taken_idx = bidx.get(term.label)
            fall_idx = bidx.get(block.fallthrough)
        self_loop = is_cond and (taken_idx == bi or fall_idx == bi)
        inner = ind + "    " if self_loop else ind
        if self_loop:
            w(ind + "while 1:")

        w(inner + f"S[0] += {n}")
        w(inner + "if S[0] > LIMIT: raise FB")
        w(inner + f"BC{fi}[{bi}] += 1")
        try:
            for instr in body:
                self._emit_body_instr(w, inner, instr, vnum, fi)
            if term is None:
                w(inner + "raise FB")  # fell off block end
                return False
            op = term.op
            if op is Opcode.JMP:
                t = bidx.get(term.label)
                if t is None:
                    w(inner + "raise FB")
                else:
                    w(inner + f"_b = {t}")
                    w(inner + "continue")
            elif op is Opcode.RET:
                if term.srcs:
                    w(inner + f"return {self._expr(term.srcs[0], vnum)}")
                else:
                    w(inner + "return None")
            elif op is Opcode.HALT:
                w(inner + "raise HALT")
            else:  # conditional branch
                vals = [self._expr(s, vnum) for s in term.srcs]
                cond = BRANCH_EXPR[op.name].format(
                    a=vals[0], b=vals[1] if len(vals) > 1 else "")
                w(inner + f"if {cond}:")
                w(inner + f"    TK{fi}[{bi}] += 1")
                if taken_idx == bi:
                    w(inner + "    continue")  # hot self-loop back edge
                elif taken_idx is None:
                    w(inner + "    raise FB")
                elif self_loop:  # fallthrough is the back edge
                    w(inner + "    break")
                else:
                    w(inner + f"    _b = {taken_idx}")
                    w(inner + "    continue")
                if fall_idx == bi:
                    w(inner + "continue")
                elif fall_idx is None:
                    w(inner + "raise FB")
                elif self_loop:  # taken is the back edge: not-taken exits
                    w(inner + "break")
                else:
                    w(inner + f"_b = {fall_idx}")
                    w(inner + "continue")
                if self_loop:
                    # Exited via 'break': resume the dispatch loop on the
                    # non-loop successor.
                    out = fall_idx if taken_idx == bi else taken_idx
                    w(ind + f"_b = {out}")
                    w(ind + "continue")
        except _Unsupported:
            w(inner + "raise FB")
        return is_cond

    # -- per-function emission -------------------------------------------------

    def _dispatch(self, w, ind: str, lo: int, hi: int, leaf) -> None:
        """Balanced binary dispatch on ``_b`` over block indices [lo, hi)."""
        if hi - lo == 1:
            leaf(w, ind, lo)
            return
        mid = (lo + hi) // 2
        w(ind + f"if _b < {mid}:")
        self._dispatch(w, ind + "    ", lo, mid, leaf)
        w(ind + "else:")
        self._dispatch(w, ind + "    ", mid, hi, leaf)

    def _gen_function(self, fi: int, fn: Function) -> None:
        w = self.lines.append
        names = tuple(b.name for b in fn.blocks)
        if len(set(fn.params)) != len(fn.params) or not fn.blocks or any(
                not isinstance(r, VReg)
                for _, i in fn.iter_instrs() for r in i.regs()):
            # Degenerate shapes: a stub that always defers to the reference.
            self.meta.append((fn.name, names, (False,) * len(names)))
            w(f"BC{fi} = [0] * {len(names)}")
            w(f"TK{fi} = [0] * {len(names)}")
            w(f"def F{fi}(*_a, FB=FB):")
            w("    raise FB")
            w("")
            return

        vnum: dict[VReg, int] = {}
        for p in fn.params:
            vnum[p] = len(vnum)
        for _, instr in fn.iter_instrs():
            for r in instr.regs():
                if r not in vnum:
                    vnum[r] = len(vnum)
        bidx = {b.name: i for i, b in enumerate(fn.blocks)}

        buf: list[str] = []
        base = "        "

        def leaf(wl, ind, bi):
            cond_flags_by_idx[bi] = self._emit_block(
                wl, ind, fi, bi, fn.blocks[bi], fn, vnum, bidx)

        cond_flags_by_idx = [False] * len(fn.blocks)
        if len(fn.blocks) > 1:
            buf.append("    _b = 0")
            buf.append("    while 1:")
            self._dispatch(buf.append, base, 0, len(fn.blocks), leaf)
        else:
            buf.append("    while 1:")
            leaf(buf.append, base, 0)
        cond_flags = tuple(cond_flags_by_idx)
        self.meta.append((fn.name, names, cond_flags))

        text = "\n".join(buf)
        used = set(_IDENT_RE.findall(text))
        bindable = (["S", "LIMIT", "MEM", "SL", "FB", "HALT", "CC",
                     f"BC{fi}", f"TK{fi}"]
                    + [n for n in self.consts if n in used])
        binds = [f"{n}={n}" for n in dict.fromkeys(bindable) if n in used]
        params = ", ".join(f"v{vnum[p]}" for p in fn.params)
        head = f"def F{fi}({params}"
        if binds:
            head += (", " if params else "") + "*, " + ", ".join(binds)
        head += "):"
        w(f"BC{fi} = [0] * {len(names)}")
        w(f"TK{fi} = [0] * {len(names)}")
        w(head)
        w(text)
        w("")

    def generate(self) -> tuple[str, dict[str, object], list]:
        w = self.lines.append
        w("S = [0]")
        w(f"CC = [0] * {len(self.module.functions)}")
        for fi, fn in enumerate(self.module.functions.values()):
            self._gen_function(fi, fn)
        return "\n".join(self.lines) + "\n", self.consts, self.meta


#: Opcodes with an entry in BRANCH_EXPR (all conditional branches).
BRANCH_EXPR_OPS = frozenset(op for op in BRANCH_FUNCS
                            if op.name in BRANCH_EXPR)


# -- compiled-code cache -------------------------------------------------------

#: id(module) -> (weakref to the module, {strict_loads -> generated or
#: None}).  Keyed by identity, mirroring sim.fastpath's program cache.
_code_cache: dict[int, tuple[object, dict]] = {}


def _generate(module: Module, strict_loads: bool):
    try:
        source, consts, meta = _Codegen(module, strict_loads).generate()
    except _Unsupported:
        return None
    code = compile(source, f"<fastinterp:{module.name}>", "exec")
    return code, consts, meta


def _compiled(module: Module, strict_loads: bool):
    key = id(module)
    entry = _code_cache.get(key)
    if entry is None or entry[0]() is not module:
        try:
            ref = weakref.ref(
                module, lambda _r, _k=key: _code_cache.pop(_k, None))
        except TypeError:  # pragma: no cover - modules are weakref-able
            return _generate(module, strict_loads)
        entry = (ref, {})
        _code_cache[key] = entry
    variants = entry[1]
    if strict_loads not in variants:
        variants[strict_loads] = _generate(module, strict_loads)
    return variants[strict_loads]


# -- driver --------------------------------------------------------------------

_SENTINEL = object()


def try_run(module: Module, entry: str, args: tuple, step_limit: int,
            strict_loads: bool) -> InterpResult | None:
    """Run *module* on the specialized engine; ``None`` means the caller
    must fall back to the reference interpreter (the partial fast run had
    no observable effect: memory starts from a fresh initial image)."""
    compiled = _compiled(module, strict_loads)
    if compiled is None:
        return None
    code, consts, meta = compiled
    fn_index = {name: i for i, name in enumerate(module.functions)}
    entry_idx = fn_index.get(entry)
    if entry_idx is None:
        return None

    memory = module.initial_memory()
    ns: dict[str, object] = dict(consts)
    ns["MEM"] = memory
    ns["LIMIT"] = step_limit
    ns["FB"] = _Fallback
    ns["HALT"] = _Halt
    ns["SL"] = _SENTINEL
    exec(code, ns)

    try:
        ns[f"F{entry_idx}"](*args)
    except _Halt:
        pass
    except Exception:
        # Undefined vreg (UnboundLocalError), step limit / unsupported
        # shape (_Fallback), arithmetic fault, deep recursion: re-run the
        # reference for exact error text and fault ordering.
        return None

    profile = Profile()
    block_counts = profile.block_counts
    branch_counts = profile.branch_counts
    for fi, (fname, block_names, cond_flags) in enumerate(meta):
        bc = ns[f"BC{fi}"]
        tk = ns[f"TK{fi}"]
        for bi, bname in enumerate(block_names):
            c = bc[bi]
            if c:
                block_counts[(fname, bname)] = c
                if cond_flags[bi]:
                    t = tk[bi]
                    branch_counts[(fname, bname)] = [t, c - t]
    cc = ns["CC"]
    for fi, (fname, _names, _flags) in enumerate(meta):
        if cc[fi]:
            profile.call_counts[fname] = cc[fi]
    return InterpResult(ns["S"][0], memory, profile)
