"""Structural and type verification of IR functions and modules."""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.function import Function, Module
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode, spec
from repro.isa.registers import PhysReg, RClass, VReg

_MIDBLOCK_CONTROL_OK = {Opcode.CALL, Opcode.TRAP, Opcode.RTE}


def _operand_class(operand) -> RClass | None:
    if isinstance(operand, (VReg, PhysReg)):
        return operand.cls
    return None  # immediate


def _value_class(operand) -> RClass:
    """Operand class with immediates classified by their Python type."""
    cls = _operand_class(operand)
    if cls is not None:
        return cls
    return RClass.FP if isinstance(operand.value, float) else RClass.INT


def _check_instr(fn: Function, instr: Instr, where: str,
                 module: Module | None) -> None:
    s = spec(instr.op)

    # Destination.
    if s.dest is None and instr.op is not Opcode.CALL:
        if instr.dest is not None:
            raise IRError(f"{where}: {instr!r} must not have a destination")
    elif instr.op is not Opcode.CALL:
        if instr.dest is None:
            raise IRError(f"{where}: {instr!r} needs a destination")
        if _operand_class(instr.dest) is not s.dest:
            raise IRError(f"{where}: {instr!r} destination class mismatch")

    # Sources.
    if instr.op is Opcode.CALL:
        pass  # variable arity, checked against the callee below
    elif instr.op is Opcode.RET:
        if len(instr.srcs) > 1:
            raise IRError(f"{where}: ret takes at most one value")
        if instr.srcs and fn.ret_class is not None:
            if _value_class(instr.srcs[0]) is not fn.ret_class:
                raise IRError(f"{where}: ret value class mismatch")
    else:
        if len(instr.srcs) != len(s.srcs):
            raise IRError(
                f"{where}: {instr!r} expects {len(s.srcs)} sources, "
                f"got {len(instr.srcs)}"
            )
        for operand, expected in zip(instr.srcs, s.srcs):
            cls = _operand_class(operand)
            if cls is None:
                if expected is RClass.FP:
                    raise IRError(
                        f"{where}: immediate in FP source slot of {instr!r}"
                    )
                if not isinstance(operand.value, int):
                    raise IRError(
                        f"{where}: non-integer immediate {operand!r} in "
                        f"integer slot of {instr!r}"
                    )
            elif cls is not expected:
                raise IRError(f"{where}: {instr!r} source class mismatch")

    # Immediates.
    if instr.op is Opcode.LI and not isinstance(instr.imm, int):
        raise IRError(f"{where}: li requires an integer immediate")
    if instr.op is Opcode.LIF and not isinstance(instr.imm, float):
        raise IRError(f"{where}: lif requires a float immediate")
    if instr.is_mem and not isinstance(instr.imm, int):
        raise IRError(f"{where}: memory op requires an integer offset")
    if instr.is_connect:
        imm = instr.imm
        if not (isinstance(imm, tuple) and isinstance(imm[0], RClass)):
            raise IRError(f"{where}: malformed connect immediate {imm!r}")
        expected_len = 3 if instr.op in (Opcode.CUSE, Opcode.CDEF) else 5
        if len(imm) != expected_len:
            raise IRError(f"{where}: malformed connect immediate {imm!r}")

    # Calls against the callee signature.  The structural part (a call must
    # name its callee) holds whether or not the surrounding module is known;
    # signature matching additionally needs the module.
    if instr.op is Opcode.CALL:
        if not instr.label:
            raise IRError(f"{where}: call without a callee label")
        if module is None:
            return
        if instr.label not in module.functions:
            raise IRError(f"{where}: call to unknown function {instr.label!r}")
        callee = module.functions[instr.label]
        if len(instr.srcs) != len(callee.params):
            raise IRError(
                f"{where}: call to {callee.name} passes {len(instr.srcs)} "
                f"args, expected {len(callee.params)}"
            )
        for operand, param in zip(instr.srcs, callee.params):
            if _value_class(operand) is not param.cls:
                raise IRError(f"{where}: argument class mismatch calling "
                              f"{callee.name}")
        if instr.dest is not None:
            if callee.ret_class is None:
                raise IRError(f"{where}: {callee.name} returns no value")
            if _operand_class(instr.dest) is not callee.ret_class:
                raise IRError(f"{where}: call result class mismatch")


def verify_function(fn: Function, module: Module | None = None) -> None:
    """Raise :class:`~repro.errors.IRError` if *fn* is malformed."""
    if not fn.blocks:
        raise IRError(f"function {fn.name} has no blocks")
    names: set[str] = set()
    for block in fn.blocks:
        if block.name in names:
            raise IRError(f"function {fn.name} has duplicate block "
                          f"label {block.name!r}")
        names.add(block.name)
    for block in fn.blocks:
        where_base = f"{fn.name}/{block.name}"
        if not block.instrs:
            raise IRError(f"{where_base}: empty block")
        term = block.terminator
        if term is None:
            raise IRError(f"{where_base}: missing terminator")
        for i, instr in enumerate(block.instrs):
            where = f"{where_base}[{i}]"
            if instr is not term and instr.is_branch:
                if instr.op not in _MIDBLOCK_CONTROL_OK:
                    raise IRError(f"{where}: control op {instr.op} mid-block")
            if instr.op is Opcode.HALT and instr is not term:
                raise IRError(f"{where}: halt mid-block")
            _check_instr(fn, instr, where, module)
        if term.is_cond_branch:
            if block.fallthrough not in names:
                raise IRError(
                    f"{where_base}: fall-through {block.fallthrough!r} missing"
                )
            if term.label not in names:
                raise IRError(f"{where_base}: branch target {term.label!r} "
                              "missing")
        elif term.op is Opcode.JMP and term.label not in names:
            raise IRError(f"{where_base}: jump target {term.label!r} missing")


def verify_module(module: Module) -> None:
    """Verify every function of *module*."""
    for fn in module.functions.values():
        verify_function(fn, module)
