"""A small DSL for constructing IR functions.

Example::

    module = Module("demo")
    b = FnBuilder(module, "sumto", params=[("i", "n")])
    n, = b.params
    total = b.li(0, name="total")
    i = b.li(0, name="i")
    b.block("loop")
    total2 = b.add(total, b.load(i, 0))   # illustrative
    ...
    b.br("blt", i, n, "loop")
    b.block("exit")
    b.ret(total)
    fn = b.done()

Integer source slots accept plain Python ints, which become immediates.
Starting a new block while the current one ends in a conditional branch makes
the new block the fall-through successor; a block without a terminator gets an
explicit jump to the newly started block.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import IRError
from repro.ir.function import BasicBlock, Function, Module
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode, spec
from repro.isa.registers import Imm, RClass, VReg

_CLS = {"i": RClass.INT, "f": RClass.FP,
        RClass.INT: RClass.INT, RClass.FP: RClass.FP}

_BRANCH_OPS = {
    "beq": Opcode.BEQ, "bne": Opcode.BNE, "blt": Opcode.BLT,
    "ble": Opcode.BLE, "bgt": Opcode.BGT, "bge": Opcode.BGE,
    "beqz": Opcode.BEQZ, "bnez": Opcode.BNEZ,
}


class FnBuilder:
    """Incrementally builds one :class:`~repro.ir.function.Function`."""

    def __init__(self, module: Module, name: str,
                 params: Sequence[tuple[str, str]] = (),
                 ret: str | None = None) -> None:
        self.module = module
        param_regs = [VReg(_CLS[cls], i, pname)
                      for i, (cls, pname) in enumerate(params)]
        ret_class = _CLS[ret] if ret is not None else None
        self.fn = Function(name, param_regs, ret_class)
        self.params = list(param_regs)
        self._cur: BasicBlock | None = None
        self._pending_fallthrough: BasicBlock | None = None
        self._finished = False

    # -- block management ----------------------------------------------------

    def block(self, name: str | None = None) -> str:
        """Start a new basic block and make it current; returns its name."""
        new = self.fn.new_block(name)
        if self._pending_fallthrough is not None:
            self._pending_fallthrough.fallthrough = new.name
            self._pending_fallthrough = None
        elif self._cur is not None and self._cur.terminator is None:
            self._cur.instrs.append(Instr(Opcode.JMP, label=new.name))
        self._cur = new
        return new.name

    def _block_for_emit(self) -> BasicBlock:
        if self._finished:
            raise IRError("builder already finished")
        if self._pending_fallthrough is not None:
            # An instruction directly after a conditional branch starts the
            # fall-through block implicitly.
            self.block()
        if self._cur is None:
            self.block("entry")
        if self._cur.terminator is not None:
            raise IRError(
                f"block {self._cur.name} already terminated; start a new block"
            )
        return self._cur

    def _emit(self, instr: Instr) -> Instr:
        self._block_for_emit().instrs.append(instr)
        return instr

    # -- operand helpers -----------------------------------------------------

    def vreg(self, cls: str = "i", name: str = "") -> VReg:
        return self.fn.new_vreg(_CLS[cls], name)

    def _int_operand(self, value) -> VReg | Imm:
        if isinstance(value, bool):
            return Imm(int(value))
        if isinstance(value, int):
            return Imm(value)
        if isinstance(value, VReg):
            if value.cls is not RClass.INT:
                raise IRError(f"{value!r} used where an integer was expected")
            return value
        raise IRError(f"bad integer operand {value!r}")

    def _fp_operand(self, value) -> VReg:
        if isinstance(value, VReg) and value.cls is RClass.FP:
            return value
        raise IRError(f"bad FP operand {value!r} (use fli() for constants)")

    def _dest(self, cls: RClass, dest: VReg | None, name: str) -> VReg:
        if dest is None:
            return self.fn.new_vreg(cls, name)
        if dest.cls is not cls:
            raise IRError(f"destination {dest!r} has wrong class for {cls}")
        return dest

    # -- integer ops -----------------------------------------------------------

    def li(self, value: int, dest: VReg | None = None, name: str = "") -> VReg:
        dest = self._dest(RClass.INT, dest, name)
        self._emit(Instr(Opcode.LI, dest=dest, imm=int(value)))
        return dest

    def move(self, src, dest: VReg | None = None, name: str = "") -> VReg:
        dest = self._dest(RClass.INT, dest, name)
        self._emit(Instr(Opcode.MOVE, dest=dest, srcs=(self._int_operand(src),)))
        return dest

    def _binop(self, op: Opcode, a, b, dest: VReg | None, name: str) -> VReg:
        dest = self._dest(RClass.INT, dest, name)
        self._emit(Instr(op, dest=dest,
                         srcs=(self._int_operand(a), self._int_operand(b))))
        return dest

    def add(self, a, b, dest=None, name=""):
        return self._binop(Opcode.ADD, a, b, dest, name)

    def sub(self, a, b, dest=None, name=""):
        return self._binop(Opcode.SUB, a, b, dest, name)

    def mul(self, a, b, dest=None, name=""):
        return self._binop(Opcode.MUL, a, b, dest, name)

    def div(self, a, b, dest=None, name=""):
        return self._binop(Opcode.DIV, a, b, dest, name)

    def rem(self, a, b, dest=None, name=""):
        return self._binop(Opcode.REM, a, b, dest, name)

    def and_(self, a, b, dest=None, name=""):
        return self._binop(Opcode.AND, a, b, dest, name)

    def or_(self, a, b, dest=None, name=""):
        return self._binop(Opcode.OR, a, b, dest, name)

    def xor(self, a, b, dest=None, name=""):
        return self._binop(Opcode.XOR, a, b, dest, name)

    def sll(self, a, b, dest=None, name=""):
        return self._binop(Opcode.SLL, a, b, dest, name)

    def srl(self, a, b, dest=None, name=""):
        return self._binop(Opcode.SRL, a, b, dest, name)

    def sra(self, a, b, dest=None, name=""):
        return self._binop(Opcode.SRA, a, b, dest, name)

    def cmpeq(self, a, b, dest=None, name=""):
        return self._binop(Opcode.CMPEQ, a, b, dest, name)

    def cmpne(self, a, b, dest=None, name=""):
        return self._binop(Opcode.CMPNE, a, b, dest, name)

    def cmplt(self, a, b, dest=None, name=""):
        return self._binop(Opcode.CMPLT, a, b, dest, name)

    def cmple(self, a, b, dest=None, name=""):
        return self._binop(Opcode.CMPLE, a, b, dest, name)

    def cmpgt(self, a, b, dest=None, name=""):
        return self._binop(Opcode.CMPGT, a, b, dest, name)

    def cmpge(self, a, b, dest=None, name=""):
        return self._binop(Opcode.CMPGE, a, b, dest, name)

    # -- floating point ops ----------------------------------------------------

    def fli(self, value: float, dest: VReg | None = None, name: str = "") -> VReg:
        dest = self._dest(RClass.FP, dest, name)
        self._emit(Instr(Opcode.LIF, dest=dest, imm=float(value)))
        return dest

    def fmov(self, src, dest=None, name="") -> VReg:
        dest = self._dest(RClass.FP, dest, name)
        self._emit(Instr(Opcode.FMOV, dest=dest, srcs=(self._fp_operand(src),)))
        return dest

    def fneg(self, src, dest=None, name="") -> VReg:
        dest = self._dest(RClass.FP, dest, name)
        self._emit(Instr(Opcode.FNEG, dest=dest, srcs=(self._fp_operand(src),)))
        return dest

    def _fbinop(self, op: Opcode, a, b, dest, name) -> VReg:
        dest = self._dest(RClass.FP, dest, name)
        self._emit(Instr(op, dest=dest,
                         srcs=(self._fp_operand(a), self._fp_operand(b))))
        return dest

    def fadd(self, a, b, dest=None, name=""):
        return self._fbinop(Opcode.FADD, a, b, dest, name)

    def fsub(self, a, b, dest=None, name=""):
        return self._fbinop(Opcode.FSUB, a, b, dest, name)

    def fmul(self, a, b, dest=None, name=""):
        return self._fbinop(Opcode.FMUL, a, b, dest, name)

    def fdiv(self, a, b, dest=None, name=""):
        return self._fbinop(Opcode.FDIV, a, b, dest, name)

    def _fcmp(self, op: Opcode, a, b, dest, name) -> VReg:
        dest = self._dest(RClass.INT, dest, name)
        self._emit(Instr(op, dest=dest,
                         srcs=(self._fp_operand(a), self._fp_operand(b))))
        return dest

    def fcmpeq(self, a, b, dest=None, name=""):
        return self._fcmp(Opcode.FCMPEQ, a, b, dest, name)

    def fcmplt(self, a, b, dest=None, name=""):
        return self._fcmp(Opcode.FCMPLT, a, b, dest, name)

    def fcmple(self, a, b, dest=None, name=""):
        return self._fcmp(Opcode.FCMPLE, a, b, dest, name)

    def cvtif(self, src, dest=None, name="") -> VReg:
        dest = self._dest(RClass.FP, dest, name)
        self._emit(Instr(Opcode.CVTIF, dest=dest, srcs=(self._int_operand(src),)))
        return dest

    def cvtfi(self, src, dest=None, name="") -> VReg:
        dest = self._dest(RClass.INT, dest, name)
        self._emit(Instr(Opcode.CVTFI, dest=dest, srcs=(self._fp_operand(src),)))
        return dest

    # -- memory ----------------------------------------------------------------

    def load(self, base, offset: int = 0, dest=None, name="") -> VReg:
        dest = self._dest(RClass.INT, dest, name)
        self._emit(Instr(Opcode.LOAD, dest=dest,
                         srcs=(self._int_operand(base),), imm=int(offset)))
        return dest

    def store(self, value, base, offset: int = 0) -> None:
        self._emit(Instr(Opcode.STORE,
                         srcs=(self._int_operand(value), self._int_operand(base)),
                         imm=int(offset)))

    def fload(self, base, offset: int = 0, dest=None, name="") -> VReg:
        dest = self._dest(RClass.FP, dest, name)
        self._emit(Instr(Opcode.FLOAD, dest=dest,
                         srcs=(self._int_operand(base),), imm=int(offset)))
        return dest

    def fstore(self, value, base, offset: int = 0) -> None:
        self._emit(Instr(Opcode.FSTORE,
                         srcs=(self._fp_operand(value), self._int_operand(base)),
                         imm=int(offset)))

    def la(self, global_name: str, dest=None, name="") -> VReg:
        """Load the address of a module global."""
        return self.li(self.module.global_addr(global_name), dest=dest,
                       name=name or global_name)

    # -- control ---------------------------------------------------------------

    def br(self, cond: str, a, b=None, target: str | None = None) -> None:
        """Emit a conditional branch; the next started block is not-taken.

        One-operand branches accept the target positionally:
        ``br("bnez", x, "loop")``.
        """
        if target is None and isinstance(b, str):
            b, target = None, b
        if target is None:
            raise IRError("br() requires a target label")
        op = _BRANCH_OPS[cond]
        nsrc = len(spec(op).srcs)
        if nsrc == 1:
            srcs = (self._int_operand(a),)
            if b is not None:
                raise IRError(f"{cond} takes one source operand")
        else:
            srcs = (self._int_operand(a), self._int_operand(b))
        block = self._block_for_emit()
        block.instrs.append(Instr(op, srcs=srcs, label=target))
        self._pending_fallthrough = block
        self._cur = None

    def jmp(self, target: str) -> None:
        self._block_for_emit().instrs.append(Instr(Opcode.JMP, label=target))
        self._cur = None

    def call(self, fname: str, args: Sequence = (), ret: str | None = None,
             dest=None, name="") -> VReg | None:
        operands = []
        for a in args:
            if isinstance(a, VReg) and a.cls is RClass.FP:
                operands.append(a)
            else:
                operands.append(self._int_operand(a))
        if ret is None:
            self._emit(Instr(Opcode.CALL, srcs=tuple(operands), label=fname))
            return None
        dest = self._dest(_CLS[ret], dest, name)
        self._emit(Instr(Opcode.CALL, dest=dest, srcs=tuple(operands),
                         label=fname))
        return dest

    def ret(self, value=None) -> None:
        if value is None:
            srcs = ()
        elif isinstance(value, VReg) and value.cls is RClass.FP:
            srcs = (value,)
        else:
            srcs = (self._int_operand(value),)
        self._block_for_emit().instrs.append(Instr(Opcode.RET, srcs=srcs))
        self._cur = None

    def halt(self) -> None:
        self._block_for_emit().instrs.append(Instr(Opcode.HALT))
        self._cur = None

    # -- finishing ---------------------------------------------------------------

    def done(self) -> Function:
        """Finish construction, register the function, and return it."""
        if self._finished:
            raise IRError("builder already finished")
        if self._pending_fallthrough is not None:
            raise IRError(
                f"block {self._pending_fallthrough.name} ends in a branch "
                "with no fall-through block"
            )
        if self._cur is not None and self._cur.terminator is None:
            raise IRError(f"block {self._cur.name} has no terminator")
        self._finished = True
        self.module.add_function(self.fn)
        return self.fn
