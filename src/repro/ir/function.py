"""IR containers: basic blocks, functions, globals, and modules.

A :class:`Function` is an ordered list of :class:`BasicBlock`; the first block
is the entry.  Every block ends in exactly one terminator:

* an unconditional ``JMP``,
* a conditional branch (taken target in ``instr.label``; the not-taken
  successor is recorded in ``block.fallthrough``),
* ``RET`` or ``HALT``.

A :class:`Module` owns functions plus global data arrays.  Global addresses
are assigned eagerly at declaration time from a fixed data base so that both
the interpreter and the simulator see the same memory image without a
relocation step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import IRError
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.registers import RClass, VReg

#: First word address of the global data segment.
DATA_BASE = 4096
#: Initial stack pointer (stack grows toward lower addresses, word-sized slots).
STACK_BASE = 1 << 22

_TERMINATORS = {
    Opcode.JMP,
    Opcode.RET,
    Opcode.HALT,
    Opcode.BEQ,
    Opcode.BNE,
    Opcode.BLT,
    Opcode.BLE,
    Opcode.BGT,
    Opcode.BGE,
    Opcode.BEQZ,
    Opcode.BNEZ,
}


class BasicBlock:
    """A straight-line sequence of instructions with one terminator."""

    __slots__ = ("name", "instrs", "fallthrough")

    def __init__(self, name: str) -> None:
        self.name = name
        self.instrs: list[Instr] = []
        #: Name of the not-taken successor when the terminator is a
        #: conditional branch; ``None`` otherwise.
        self.fallthrough: str | None = None

    @property
    def terminator(self) -> Instr | None:
        if self.instrs and self.instrs[-1].op in _TERMINATORS:
            return self.instrs[-1]
        return None

    def successors(self) -> list[str]:
        """Names of successor blocks in (taken, fallthrough) order."""
        term = self.terminator
        if term is None:
            raise IRError(f"block {self.name} has no terminator")
        if term.op is Opcode.JMP:
            return [term.label]
        if term.is_cond_branch:
            if self.fallthrough is None:
                raise IRError(f"block {self.name} ends in a branch but has no "
                              "fallthrough successor")
            return [term.label, self.fallthrough]
        return []

    def body(self) -> list[Instr]:
        """Instructions excluding the terminator."""
        if self.terminator is None:
            return list(self.instrs)
        return self.instrs[:-1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BasicBlock {self.name}: {len(self.instrs)} instrs>"


class Function:
    """A function: parameters, blocks, and a virtual register namespace."""

    def __init__(self, name: str, params: list[VReg] | None = None,
                 ret_class: RClass | None = None) -> None:
        self.name = name
        self.params: list[VReg] = list(params or [])
        self.ret_class = ret_class
        self.blocks: list[BasicBlock] = []
        self._by_name: dict[str, BasicBlock] = {}
        self._next_vid = max((p.vid for p in self.params), default=-1) + 1
        self._next_label = 0

    # -- construction --------------------------------------------------------

    def new_vreg(self, cls: RClass, name: str = "") -> VReg:
        v = VReg(cls, self._next_vid, name)
        self._next_vid += 1
        return v

    def new_block(self, name: str | None = None) -> BasicBlock:
        if name is None:
            name = f".L{self._next_label}"
            self._next_label += 1
        if name in self._by_name:
            raise IRError(f"duplicate block name {name!r} in {self.name}")
        block = BasicBlock(name)
        self.blocks.append(block)
        self._by_name[name] = block
        return block

    # -- access --------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block(self, name: str) -> BasicBlock:
        try:
            return self._by_name[name]
        except KeyError:
            raise IRError(f"no block named {name!r} in {self.name}") from None

    def has_block(self, name: str) -> bool:
        return name in self._by_name

    def iter_instrs(self) -> Iterator[tuple[BasicBlock, Instr]]:
        for block in self.blocks:
            for instr in block.instrs:
                yield block, instr

    def vregs(self) -> set[VReg]:
        """All virtual registers referenced by this function."""
        found: set[VReg] = set(self.params)
        for _, instr in self.iter_instrs():
            for reg in instr.regs():
                if isinstance(reg, VReg):
                    found.add(reg)
        return found

    def instruction_count(self) -> int:
        return sum(len(b.instrs) for b in self.blocks)

    def remove_unreachable_blocks(self) -> int:
        """Drop blocks not reachable from the entry; returns removed count."""
        reachable: set[str] = set()
        stack = [self.entry.name]
        while stack:
            name = stack.pop()
            if name in reachable:
                continue
            reachable.add(name)
            stack.extend(self.block(name).successors())
        removed = [b for b in self.blocks if b.name not in reachable]
        if removed:
            self.blocks = [b for b in self.blocks if b.name in reachable]
            self._by_name = {b.name: b for b in self.blocks}
        return len(removed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Function {self.name}: {len(self.blocks)} blocks>"


@dataclass
class GlobalArray:
    """A global data array living at a fixed word address."""

    name: str
    size: int
    addr: int
    init: list[int | float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.init) > self.size:
            raise IRError(f"global {self.name}: init longer than size")


class Module:
    """A compilation unit: functions plus a global data segment."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalArray] = {}
        self._next_addr = DATA_BASE

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise IRError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function named {name!r}") from None

    def add_global(self, name: str, size: int,
                   init: list[int | float] | None = None) -> GlobalArray:
        if name in self.globals:
            raise IRError(f"duplicate global {name!r}")
        if size < 1:
            raise IRError(f"global {name!r} must have size >= 1")
        g = GlobalArray(name, size, self._next_addr, list(init or []))
        self._next_addr += size
        self.globals[name] = g
        return g

    def global_addr(self, name: str) -> int:
        try:
            return self.globals[name].addr
        except KeyError:
            raise IRError(f"no global named {name!r}") from None

    def initial_memory(self) -> dict[int, int | float]:
        """The initial memory image implied by global initializers."""
        image: dict[int, int | float] = {}
        for g in self.globals.values():
            for offset, value in enumerate(g.init):
                image[g.addr + offset] = value
        return image

    def instruction_count(self) -> int:
        return sum(fn.instruction_count() for fn in self.functions.values())
