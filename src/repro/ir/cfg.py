"""Control-flow graph analyses: orders, dominators, natural loops."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function


def successors(fn: Function) -> dict[str, list[str]]:
    return {b.name: b.successors() for b in fn.blocks}


def predecessors(fn: Function) -> dict[str, list[str]]:
    preds: dict[str, list[str]] = {b.name: [] for b in fn.blocks}
    for b in fn.blocks:
        for s in b.successors():
            preds[s].append(b.name)
    return preds


def reverse_postorder(fn: Function) -> list[str]:
    """Block names in reverse postorder from the entry (reachable only)."""
    succ = successors(fn)
    seen: set[str] = set()
    order: list[str] = []

    entry = fn.entry.name
    # Iterative DFS with an explicit stack to avoid recursion limits.
    stack: list[tuple[str, int]] = [(entry, 0)]
    seen.add(entry)
    while stack:
        node, idx = stack[-1]
        kids = succ[node]
        if idx < len(kids):
            stack[-1] = (node, idx + 1)
            child = kids[idx]
            if child not in seen:
                seen.add(child)
                stack.append((child, 0))
        else:
            order.append(node)
            stack.pop()
    order.reverse()
    return order


def dominators(fn: Function) -> dict[str, set[str]]:
    """Classic iterative dominator sets (dom[b] includes b)."""
    rpo = reverse_postorder(fn)
    preds = predecessors(fn)
    all_blocks = set(rpo)
    entry = fn.entry.name
    dom: dict[str, set[str]] = {name: set(all_blocks) for name in rpo}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for name in rpo:
            if name == entry:
                continue
            reachable_preds = [p for p in preds[name] if p in all_blocks]
            new: set[str] = set(all_blocks)
            for p in reachable_preds:
                new &= dom[p]
            new.add(name)
            if new != dom[name]:
                dom[name] = new
                changed = True
    return dom


@dataclass
class NaturalLoop:
    """A natural loop identified by a back edge latch -> header."""

    header: str
    latch: str
    body: set[str] = field(default_factory=set)

    @property
    def is_self_loop(self) -> bool:
        return self.header == self.latch and self.body == {self.header}


def natural_loops(fn: Function) -> list[NaturalLoop]:
    """All natural loops, found via back edges under dominance."""
    dom = dominators(fn)
    preds = predecessors(fn)
    loops: list[NaturalLoop] = []
    for block in fn.blocks:
        if block.name not in dom:
            continue  # unreachable
        for succ in block.successors():
            if succ in dom[block.name]:
                # back edge block -> succ
                loop = NaturalLoop(header=succ, latch=block.name)
                loop.body = {succ}
                stack = [block.name]
                while stack:
                    node = stack.pop()
                    if node in loop.body:
                        continue
                    loop.body.add(node)
                    stack.extend(p for p in preds[node] if p in dom)
                loops.append(loop)
    return loops


def loop_depths(fn: Function) -> dict[str, int]:
    """Loop nesting depth per block (0 = not in any loop)."""
    depths = {b.name: 0 for b in fn.blocks}
    for loop in natural_loops(fn):
        for name in loop.body:
            depths[name] += 1
    return depths
