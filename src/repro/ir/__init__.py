"""Compiler IR: functions, blocks, builder DSL, analyses, interpreter."""

from repro.ir.builder import FnBuilder
from repro.ir.cfg import (
    NaturalLoop,
    dominators,
    loop_depths,
    natural_loops,
    predecessors,
    reverse_postorder,
    successors,
)
from repro.ir.function import (
    DATA_BASE,
    STACK_BASE,
    BasicBlock,
    Function,
    GlobalArray,
    Module,
)
from repro.ir.interp import (
    IR_ENGINE_ENV,
    Interpreter,
    InterpResult,
    Profile,
    resolve_ir_engine,
    run_module,
)
from repro.ir.liveness import LivenessInfo, liveness, max_live_pressure
from repro.ir.verify import verify_function, verify_module

__all__ = [
    "BasicBlock",
    "DATA_BASE",
    "FnBuilder",
    "Function",
    "GlobalArray",
    "IR_ENGINE_ENV",
    "Interpreter",
    "InterpResult",
    "LivenessInfo",
    "Module",
    "NaturalLoop",
    "Profile",
    "STACK_BASE",
    "dominators",
    "liveness",
    "loop_depths",
    "max_live_pressure",
    "natural_loops",
    "predecessors",
    "resolve_ir_engine",
    "reverse_postorder",
    "run_module",
    "successors",
    "verify_function",
    "verify_module",
]
