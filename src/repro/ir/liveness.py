"""Backward liveness dataflow over virtual registers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import reverse_postorder
from repro.ir.function import BasicBlock, Function
from repro.isa.registers import VReg


def _block_use_def(block: BasicBlock) -> tuple[set[VReg], set[VReg]]:
    """Upward-exposed uses and defs of *block* (virtual registers only)."""
    use: set[VReg] = set()
    defs: set[VReg] = set()
    for instr in block.instrs:
        for s in instr.reg_srcs():
            if isinstance(s, VReg) and s not in defs:
                use.add(s)
        d = instr.dest
        if isinstance(d, VReg):
            defs.add(d)
    return use, defs


@dataclass
class LivenessInfo:
    """Per-block live-in/live-out sets for one function."""

    live_in: dict[str, set[VReg]]
    live_out: dict[str, set[VReg]]

    def live_across_instr(self, block: BasicBlock) -> list[set[VReg]]:
        """Live-after set for each instruction position in *block*.

        Returns a list ``after`` where ``after[i]`` is the set of virtual
        registers live immediately after ``block.instrs[i]``.
        """
        live = set(self.live_out[block.name])
        after: list[set[VReg]] = [set() for _ in block.instrs]
        for i in range(len(block.instrs) - 1, -1, -1):
            after[i] = set(live)
            instr = block.instrs[i]
            d = instr.dest
            if isinstance(d, VReg):
                live.discard(d)
            for s in instr.reg_srcs():
                if isinstance(s, VReg):
                    live.add(s)
        return after


def liveness(fn: Function) -> LivenessInfo:
    """Compute per-block liveness for *fn*."""
    rpo = reverse_postorder(fn)
    use: dict[str, set[VReg]] = {}
    defs: dict[str, set[VReg]] = {}
    for name in rpo:
        use[name], defs[name] = _block_use_def(fn.block(name))
    live_in: dict[str, set[VReg]] = {name: set() for name in rpo}
    live_out: dict[str, set[VReg]] = {name: set() for name in rpo}

    # Iterate to a fixed point, visiting blocks in postorder (reverse RPO)
    # so information flows backward quickly.
    worklist = list(reversed(rpo))
    changed = True
    while changed:
        changed = False
        for name in worklist:
            out: set[VReg] = set()
            for succ in fn.block(name).successors():
                out |= live_in.get(succ, set())
            newly_in = use[name] | (out - defs[name])
            if out != live_out[name] or newly_in != live_in[name]:
                live_out[name] = out
                live_in[name] = newly_in
                changed = True
    return LivenessInfo(live_in, live_out)


def max_live_pressure(fn: Function) -> dict[str, int]:
    """Maximum number of simultaneously live vregs per register class name.

    A diagnostic used by tests and examples to demonstrate that ILP
    optimization raises register pressure (the paper's motivation).
    """
    info = liveness(fn)
    peak = {"int": 0, "fp": 0}
    for block in fn.blocks:
        for after in info.live_across_instr(block):
            by_cls = {"int": 0, "fp": 0}
            for v in after:
                by_cls[v.cls.value] += 1
            for k in peak:
                peak[k] = max(peak[k], by_cls[k])
    return peak
