"""Execution-driven IR interpreter: the golden model and profiler.

The interpreter executes virtual-register IR directly (before register
allocation), using the exact same operation semantics module as the
cycle-level simulator.  It serves two roles from the paper's methodology:

* the *reference output* every compiled configuration must reproduce (the
  paper verified compiler output by running it on a DEC-3100), and
* the *profile source*: block execution counts feed the register allocator's
  priority function, and branch taken/not-taken counts feed static branch
  prediction hints.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import ConfigError, IRError, SimulationError
from repro.ir.function import Function, Module
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.registers import Imm, VReg
from repro.isa.semantics import ALU_FUNCS, branch_taken, evaluate

DEFAULT_STEP_LIMIT = 50_000_000

#: Environment variable selecting the interpreter engine (mirrors the
#: simulator's REPRO_ENGINE).
IR_ENGINE_ENV = "REPRO_IR_ENGINE"

VALID_IR_ENGINES = ("fast", "reference")

#: Sentinel distinguishing "absent" from any storable memory value.
_UNWRITTEN = object()


def resolve_ir_engine(engine: str | None = None) -> str:
    """Resolve an engine selection: explicit argument, else the
    ``REPRO_IR_ENGINE`` environment variable, else ``fast``."""
    if engine is None or engine in ("", "auto"):
        engine = os.environ.get(IR_ENGINE_ENV, "").strip().lower() or "fast"
    if engine not in VALID_IR_ENGINES:
        raise ConfigError(
            f"unknown IR engine {engine!r}; valid: "
            f"{', '.join(VALID_IR_ENGINES)}"
        )
    return engine


@dataclass
class Profile:
    """Dynamic execution profile gathered by the interpreter."""

    #: (function, block) -> execution count.
    block_counts: Counter = field(default_factory=Counter)
    #: (function, block) -> [taken, not-taken] counts of its terminator.
    branch_counts: dict[tuple[str, str], list[int]] = field(default_factory=dict)
    #: function -> number of calls made to it.
    call_counts: Counter = field(default_factory=Counter)

    def block_weight(self, fn_name: str, block_name: str) -> int:
        return self.block_counts.get((fn_name, block_name), 0)

    def predict_taken(self, fn_name: str, block_name: str) -> bool | None:
        """Static prediction for the branch terminating the given block."""
        counts = self.branch_counts.get((fn_name, block_name))
        if counts is None or counts[0] == counts[1]:
            return None
        return counts[0] > counts[1]


@dataclass
class InterpResult:
    """Outcome of one interpreter run."""

    steps: int
    memory: dict[int, int | float]
    profile: Profile

    def load_word(self, addr: int) -> int | float:
        return self.memory.get(addr, 0)


class _Frame:
    __slots__ = ("fn", "env", "ret_dest", "ret_block", "ret_index")

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.env: dict[VReg, int | float] = {}
        self.ret_dest: VReg | None = None
        self.ret_block = None
        self.ret_index = 0


class Interpreter:
    """Interprets a module starting from an entry function.

    ``engine`` selects the execution strategy: ``"fast"`` (the default,
    overridable via ``REPRO_IR_ENGINE``) runs the specializing engine in
    :mod:`repro.ir.fastinterp`, which is bit-exact with the reference and
    transparently falls back to it for any run it cannot complete
    (step-limit overruns, undefined reads, opcodes without IR semantics);
    ``"reference"`` forces the dict-dispatch loop below.  ``ran_fastpath``
    reports which engine produced the last result.

    ``strict_loads`` makes LOAD/FLOAD from a never-written address an
    error, matching :meth:`repro.sim.core.SimResult.load_word`; by default
    such loads read 0 (the historical behavior, which silently masks
    address bugs).
    """

    def __init__(self, module: Module, *,
                 step_limit: int = DEFAULT_STEP_LIMIT,
                 engine: str | None = None,
                 strict_loads: bool = False) -> None:
        self.module = module
        self.step_limit = step_limit
        self.engine = resolve_ir_engine(engine)
        self.strict_loads = strict_loads
        self.ran_fastpath = False

    def run(self, entry: str = "main",
            args: tuple[int | float, ...] = ()) -> InterpResult:
        fn = self.module.function(entry)
        if len(args) != len(fn.params):
            raise IRError(f"{entry} expects {len(fn.params)} args")
        if self.engine == "fast":
            from repro.ir import fastinterp

            result = fastinterp.try_run(self.module, entry, tuple(args),
                                        self.step_limit, self.strict_loads)
            if result is not None:
                self.ran_fastpath = True
                return result
        self.ran_fastpath = False
        return self._run_reference(entry, args)

    def _run_reference(self, entry: str,
                       args: tuple[int | float, ...]) -> InterpResult:
        module = self.module
        fn = module.function(entry)
        memory: dict[int, int | float] = module.initial_memory()
        profile = Profile()
        block_counts = profile.block_counts
        branch_counts = profile.branch_counts

        frame = _Frame(fn)
        frame.env.update(zip(fn.params, args))
        call_stack: list[_Frame] = []
        block = fn.entry
        index = 0
        steps = 0
        limit = self.step_limit
        load_default = _UNWRITTEN if self.strict_loads else 0
        env = frame.env
        block_counts[(fn.name, block.name)] += 1

        def value(operand):
            if isinstance(operand, Imm):
                return operand.value
            try:
                return env[operand]
            except KeyError:
                raise IRError(
                    f"{fn.name}/{block.name}: read of undefined {operand!r}"
                ) from None

        while True:
            if index >= len(block.instrs):
                raise IRError(f"{fn.name}/{block.name}: fell off block end")
            instr: Instr = block.instrs[index]
            steps += 1
            if steps > limit:
                raise SimulationError(
                    f"interpreter exceeded {limit} steps (infinite loop?)"
                )
            op = instr.op

            if op is Opcode.LI or op is Opcode.LIF:
                env[instr.dest] = instr.imm
                index += 1
            elif op is Opcode.LOAD or op is Opcode.FLOAD:
                addr = value(instr.srcs[0]) + instr.imm
                val = memory.get(addr, load_default)
                if val is _UNWRITTEN:
                    raise SimulationError(
                        f"{fn.name}/{block.name}: load of never-written "
                        f"address {addr} (strict_loads; the simulator's "
                        "load_word raises on such reads too)"
                    )
                env[instr.dest] = val
                index += 1
            elif op is Opcode.STORE or op is Opcode.FSTORE:
                addr = value(instr.srcs[1]) + instr.imm
                memory[addr] = value(instr.srcs[0])
                index += 1
            elif op is Opcode.JMP:
                block = fn.block(instr.label)
                index = 0
                block_counts[(fn.name, block.name)] += 1
            elif instr.is_cond_branch:
                taken = branch_taken(op, *(value(s) for s in instr.srcs))
                counts = branch_counts.setdefault((fn.name, block.name), [0, 0])
                counts[0 if taken else 1] += 1
                block = fn.block(instr.label if taken else block.fallthrough)
                index = 0
                block_counts[(fn.name, block.name)] += 1
            elif op is Opcode.CALL:
                callee = module.function(instr.label)
                profile.call_counts[callee.name] += 1
                new_frame = _Frame(callee)
                new_frame.env.update(
                    zip(callee.params, (value(s) for s in instr.srcs))
                )
                new_frame.ret_dest = instr.dest
                frame.ret_block = block
                frame.ret_index = index + 1
                call_stack.append(frame)
                frame = new_frame
                fn = callee
                env = frame.env
                block = fn.entry
                index = 0
                block_counts[(fn.name, block.name)] += 1
            elif op is Opcode.RET:
                ret_value = value(instr.srcs[0]) if instr.srcs else None
                if not call_stack:
                    return InterpResult(steps, memory, profile)
                returning = frame
                frame = call_stack.pop()
                fn = frame.fn
                env = frame.env
                block = frame.ret_block
                index = frame.ret_index
                if returning.ret_dest is not None:
                    if ret_value is None:
                        raise IRError(
                            f"{returning.fn.name} returned no value but the "
                            "caller expects one"
                        )
                    env[returning.ret_dest] = ret_value
            elif op is Opcode.HALT:
                return InterpResult(steps, memory, profile)
            elif op is Opcode.NOP:
                index += 1
            elif op not in ALU_FUNCS:
                raise IRError(
                    f"{fn.name}/{block.name}: {op.value} has no IR-level "
                    "semantics (connects, traps and PSW access are "
                    "machine-level concepts; run them on the simulator)"
                )
            else:
                func_srcs = tuple(value(s) for s in instr.srcs)
                env[instr.dest] = evaluate(op, *func_srcs)
                index += 1


def run_module(module: Module, entry: str = "main",
               step_limit: int = DEFAULT_STEP_LIMIT,
               engine: str | None = None,
               strict_loads: bool = False) -> InterpResult:
    """Convenience wrapper: interpret *module* from *entry*."""
    return Interpreter(module, step_limit=step_limit, engine=engine,
                       strict_loads=strict_loads).run(entry)
