"""Typed per-cycle event stream from the simulator core.

The :class:`Observer` is the event bus of the observability layer: the
simulator core calls its ``on_*`` hooks at each microarchitectural event —
instruction issue, CRAY-1 register-interlock stall (with the blocking
register), mapping-table busy stall (a connect's effective latency, paper
section 2.4), memory-channel structural stall, pipeline redirect
(misprediction / trap / rte / interrupt), connect-instruction map mutation,
and call/return map resets (section 4.1).

Design constraints:

* **zero overhead when disabled** — the core guards every hook behind a
  single ``observer is not None`` test, so an unobserved simulation runs the
  exact same instruction stream at the exact same speed as before the
  subsystem existed;
* **zero observer effect when enabled** — hooks only *read* simulation
  state; enabling observation never changes cycle counts, instruction
  counts, or program results (asserted by the CPI-stack property tests);
* **cheap aggregate mode** — with ``keep_events=False`` the observer updates
  online counters only and allocates no event objects, which is what the
  sweep executor uses to collect per-job CPI stacks across whole figures.

Events are plain frozen dataclasses so exporters and analyzers can pattern
match on type; external listeners may also be attached with
:meth:`Observer.subscribe`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.isa.registers import RClass

#: Stall causes attributed by the interlock logic.
STALL_RAW = "raw"        # a source/destination register write is in flight
STALL_MAP = "map"        # a mapping-table entry update is in flight

#: Redirect causes (pipeline refill penalties).
REDIRECT_MISPREDICT = "mispredict"
REDIRECT_TRAP = "trap"
REDIRECT_RTE = "rte"
REDIRECT_INTERRUPT = "interrupt"


@dataclass(frozen=True, slots=True)
class IssueEvent:
    """One instruction issued in slot *slot* of cycle *cycle*."""

    cycle: int
    pc: int
    slot: int


@dataclass(frozen=True, slots=True)
class StallEvent:
    """A zero-issue interlock stall: the instruction at *pc* could not issue
    for *duration* cycles because register (*rclass*, *index*) was busy."""

    cycle: int
    duration: int
    pc: int
    cause: str           # STALL_RAW or STALL_MAP
    rclass: RClass
    index: int
    origin: str | None   # provenance of the *blocked* instruction
    category: object     # Category of the blocked instruction


@dataclass(frozen=True, slots=True)
class MemStallEvent:
    """A memory operation at *pc* hit the per-cycle channel limit; the issue
    group ended early (slot-level structural stall, Figure 13)."""

    cycle: int
    pc: int


@dataclass(frozen=True, slots=True)
class RedirectEvent:
    """A pipeline redirect charging *penalty* refill cycles."""

    cycle: int
    pc: int
    cause: str           # REDIRECT_* constant
    penalty: int


@dataclass(frozen=True, slots=True)
class ConnectEvent:
    """A connect instruction mutated the register mapping table.

    ``updates`` is the decoded ``(rclass, which, index, phys)`` tuple list;
    ``zero_cycle`` is true when the machine forwards the new mapping to
    same-cycle consumers (0-cycle connect latency, paper Figures 5/6)."""

    cycle: int
    pc: int
    zero_cycle: bool
    updates: tuple


@dataclass(frozen=True, slots=True)
class MapResetEvent:
    """The mapping table was reset to home locations (call/return,
    section 4.1) or bypassed for a handler (trap, section 4.3)."""

    cycle: int
    pc: int
    cause: str           # "call", "ret", or "trap"


Event = (IssueEvent | StallEvent | MemStallEvent | RedirectEvent
         | ConnectEvent | MapResetEvent)


def event_to_dict(ev: Event) -> dict:
    """A plain-JSON representation of one event.

    The canonical wire form: :func:`repro.observe.export.events_jsonl` emits
    it line-by-line, and :class:`EventForwarder` ships it across process
    boundaries (simulations running in serve/sweep worker processes forward
    progress to the parent through a queue of these dicts).
    """
    if isinstance(ev, IssueEvent):
        return {"type": "issue", "cycle": ev.cycle, "pc": ev.pc,
                "slot": ev.slot}
    if isinstance(ev, StallEvent):
        return {"type": "stall", "cycle": ev.cycle, "duration": ev.duration,
                "pc": ev.pc, "cause": ev.cause,
                "reg": f"{ev.rclass.value}:{ev.index}",
                "origin": ev.origin, "category": ev.category.name}
    if isinstance(ev, MemStallEvent):
        return {"type": "mem_stall", "cycle": ev.cycle, "pc": ev.pc}
    if isinstance(ev, RedirectEvent):
        return {"type": "redirect", "cycle": ev.cycle, "pc": ev.pc,
                "cause": ev.cause, "penalty": ev.penalty}
    if isinstance(ev, ConnectEvent):
        return {"type": "connect", "cycle": ev.cycle, "pc": ev.pc,
                "zero_cycle": ev.zero_cycle,
                "updates": [[rclass.value, which, idx, phys]
                            for rclass, which, idx, phys in ev.updates]}
    if isinstance(ev, MapResetEvent):
        return {"type": "map_reset", "cycle": ev.cycle, "pc": ev.pc,
                "cause": ev.cause}
    raise TypeError(f"unknown event {ev!r}")


class EventForwarder:
    """Forwards observer events across a process boundary as plain dicts.

    Subscribe an instance to an :class:`Observer`; every *sample_every*-th
    issue event (plus every non-issue event, which are rare and
    information-dense) is converted with :func:`event_to_dict` and handed to
    *sink* — any callable taking one dict, typically a closure around a
    ``multiprocessing`` queue's ``put``.  Sampling keeps the queue traffic
    bounded on long simulations; *limit* hard-caps the total number of
    forwarded events so an adversarial program cannot flood the parent.
    """

    __slots__ = ("sink", "sample_every", "limit", "forwarded", "dropped",
                 "_issue_seen")

    def __init__(self, sink, sample_every: int = 4096,
                 limit: int = 10_000) -> None:
        self.sink = sink
        self.sample_every = max(1, sample_every)
        self.limit = limit
        self.forwarded = 0
        self.dropped = 0
        self._issue_seen = 0

    def __call__(self, event: Event) -> None:
        if isinstance(event, IssueEvent):
            self._issue_seen += 1
            if self._issue_seen % self.sample_every != 1 \
                    and self.sample_every > 1:
                return
        if self.forwarded >= self.limit:
            self.dropped += 1
            return
        self.forwarded += 1
        self.sink(event_to_dict(event))


class Observer:
    """Collects simulator events and maintains online aggregate counters."""

    __slots__ = (
        "keep_events", "limit", "events", "truncated", "_listeners",
        "issue_cycles", "instructions", "_last_issue_cycle",
        "stall_by_cause", "stall_by_origin", "stall_by_category",
        "stall_by_reg", "redirect_by_cause", "mem_slot_stalls",
        "connects", "zero_cycle_connects", "map_resets",
    )

    def __init__(self, keep_events: bool = True,
                 limit: int = 1_000_000) -> None:
        self.keep_events = keep_events
        self.limit = limit
        self.events: list[Event] = []
        self.truncated = False
        self._listeners: list = []
        # -- aggregate counters (always maintained) --
        self.issue_cycles = 0
        self.instructions = 0
        self._last_issue_cycle = -1
        self.stall_by_cause: Counter = Counter()
        self.stall_by_origin: Counter = Counter()
        self.stall_by_category: Counter = Counter()
        self.stall_by_reg: Counter = Counter()
        self.redirect_by_cause: Counter = Counter()
        self.mem_slot_stalls = 0
        self.connects = 0
        self.zero_cycle_connects = 0
        self.map_resets = 0

    # -- event plumbing --------------------------------------------------------

    def subscribe(self, listener) -> None:
        """Attach ``listener(event)``, called for every emitted event.

        Subscribing forces event-object construction even when
        ``keep_events`` is false.
        """
        self._listeners.append(listener)

    def _emit(self, event: Event) -> None:
        if self.keep_events:
            if len(self.events) < self.limit:
                self.events.append(event)
            else:
                self.truncated = True
        for listener in self._listeners:
            listener(event)

    def _wants_event(self) -> bool:
        return self.keep_events or bool(self._listeners)

    # -- hooks called by the simulator core ------------------------------------

    def on_issue(self, cycle: int, pc: int, slot: int) -> None:
        self.instructions += 1
        if cycle != self._last_issue_cycle:
            self._last_issue_cycle = cycle
            self.issue_cycles += 1
        if self._wants_event():
            self._emit(IssueEvent(cycle, pc, slot))

    def on_stall(self, cycle: int, duration: int, pc: int, cause: str,
                 rclass: RClass, index: int, origin: str | None,
                 category) -> None:
        self.stall_by_cause[cause] += duration
        self.stall_by_origin[origin] += duration
        self.stall_by_category[category] += duration
        self.stall_by_reg[(rclass, index)] += duration
        if self._wants_event():
            self._emit(StallEvent(cycle, duration, pc, cause, rclass, index,
                                  origin, category))

    def on_mem_stall(self, cycle: int, pc: int) -> None:
        self.mem_slot_stalls += 1
        if self._wants_event():
            self._emit(MemStallEvent(cycle, pc))

    def on_redirect(self, cycle: int, pc: int, cause: str,
                    penalty: int) -> None:
        self.redirect_by_cause[cause] += penalty
        if self._wants_event():
            self._emit(RedirectEvent(cycle, pc, cause, penalty))

    def on_connect(self, cycle: int, pc: int, zero_cycle: bool,
                   updates) -> None:
        self.connects += 1
        if zero_cycle:
            self.zero_cycle_connects += 1
        if self._wants_event():
            self._emit(ConnectEvent(cycle, pc, zero_cycle, tuple(updates)))

    def on_map_reset(self, cycle: int, pc: int, cause: str) -> None:
        self.map_resets += 1
        if self._wants_event():
            self._emit(MapResetEvent(cycle, pc, cause))

    # -- derived totals --------------------------------------------------------

    @property
    def stall_cycles(self) -> int:
        return sum(self.stall_by_cause.values())

    @property
    def redirect_cycles(self) -> int:
        return sum(self.redirect_by_cause.values())
