"""Typed per-cycle event stream from the simulator core.

The :class:`Observer` is the event bus of the observability layer: the
simulator core calls its ``on_*`` hooks at each microarchitectural event —
instruction issue, CRAY-1 register-interlock stall (with the blocking
register), mapping-table busy stall (a connect's effective latency, paper
section 2.4), memory-channel structural stall, pipeline redirect
(misprediction / trap / rte / interrupt), connect-instruction map mutation,
and call/return map resets (section 4.1).

Design constraints:

* **zero overhead when disabled** — the core guards every hook behind a
  single ``observer is not None`` test, so an unobserved simulation runs the
  exact same instruction stream at the exact same speed as before the
  subsystem existed;
* **zero observer effect when enabled** — hooks only *read* simulation
  state; enabling observation never changes cycle counts, instruction
  counts, or program results (asserted by the CPI-stack property tests);
* **cheap aggregate mode** — with ``keep_events=False`` the observer updates
  online counters only and allocates no event objects, which is what the
  sweep executor uses to collect per-job CPI stacks across whole figures.

Events are plain frozen dataclasses so exporters and analyzers can pattern
match on type; external listeners may also be attached with
:meth:`Observer.subscribe`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.isa.registers import RClass

#: Stall causes attributed by the interlock logic.
STALL_RAW = "raw"        # a source/destination register write is in flight
STALL_MAP = "map"        # a mapping-table entry update is in flight

#: Redirect causes (pipeline refill penalties).
REDIRECT_MISPREDICT = "mispredict"
REDIRECT_TRAP = "trap"
REDIRECT_RTE = "rte"
REDIRECT_INTERRUPT = "interrupt"


@dataclass(frozen=True, slots=True)
class IssueEvent:
    """One instruction issued in slot *slot* of cycle *cycle*."""

    cycle: int
    pc: int
    slot: int


@dataclass(frozen=True, slots=True)
class StallEvent:
    """A zero-issue interlock stall: the instruction at *pc* could not issue
    for *duration* cycles because register (*rclass*, *index*) was busy."""

    cycle: int
    duration: int
    pc: int
    cause: str           # STALL_RAW or STALL_MAP
    rclass: RClass
    index: int
    origin: str | None   # provenance of the *blocked* instruction
    category: object     # Category of the blocked instruction


@dataclass(frozen=True, slots=True)
class MemStallEvent:
    """A memory operation at *pc* hit the per-cycle channel limit; the issue
    group ended early (slot-level structural stall, Figure 13)."""

    cycle: int
    pc: int


@dataclass(frozen=True, slots=True)
class RedirectEvent:
    """A pipeline redirect charging *penalty* refill cycles."""

    cycle: int
    pc: int
    cause: str           # REDIRECT_* constant
    penalty: int


@dataclass(frozen=True, slots=True)
class ConnectEvent:
    """A connect instruction mutated the register mapping table.

    ``updates`` is the decoded ``(rclass, which, index, phys)`` tuple list;
    ``zero_cycle`` is true when the machine forwards the new mapping to
    same-cycle consumers (0-cycle connect latency, paper Figures 5/6)."""

    cycle: int
    pc: int
    zero_cycle: bool
    updates: tuple


@dataclass(frozen=True, slots=True)
class MapResetEvent:
    """The mapping table was reset to home locations (call/return,
    section 4.1) or bypassed for a handler (trap, section 4.3)."""

    cycle: int
    pc: int
    cause: str           # "call", "ret", or "trap"


Event = (IssueEvent | StallEvent | MemStallEvent | RedirectEvent
         | ConnectEvent | MapResetEvent)


class Observer:
    """Collects simulator events and maintains online aggregate counters."""

    __slots__ = (
        "keep_events", "limit", "events", "truncated", "_listeners",
        "issue_cycles", "instructions", "_last_issue_cycle",
        "stall_by_cause", "stall_by_origin", "stall_by_category",
        "stall_by_reg", "redirect_by_cause", "mem_slot_stalls",
        "connects", "zero_cycle_connects", "map_resets",
    )

    def __init__(self, keep_events: bool = True,
                 limit: int = 1_000_000) -> None:
        self.keep_events = keep_events
        self.limit = limit
        self.events: list[Event] = []
        self.truncated = False
        self._listeners: list = []
        # -- aggregate counters (always maintained) --
        self.issue_cycles = 0
        self.instructions = 0
        self._last_issue_cycle = -1
        self.stall_by_cause: Counter = Counter()
        self.stall_by_origin: Counter = Counter()
        self.stall_by_category: Counter = Counter()
        self.stall_by_reg: Counter = Counter()
        self.redirect_by_cause: Counter = Counter()
        self.mem_slot_stalls = 0
        self.connects = 0
        self.zero_cycle_connects = 0
        self.map_resets = 0

    # -- event plumbing --------------------------------------------------------

    def subscribe(self, listener) -> None:
        """Attach ``listener(event)``, called for every emitted event.

        Subscribing forces event-object construction even when
        ``keep_events`` is false.
        """
        self._listeners.append(listener)

    def _emit(self, event: Event) -> None:
        if self.keep_events:
            if len(self.events) < self.limit:
                self.events.append(event)
            else:
                self.truncated = True
        for listener in self._listeners:
            listener(event)

    def _wants_event(self) -> bool:
        return self.keep_events or bool(self._listeners)

    # -- hooks called by the simulator core ------------------------------------

    def on_issue(self, cycle: int, pc: int, slot: int) -> None:
        self.instructions += 1
        if cycle != self._last_issue_cycle:
            self._last_issue_cycle = cycle
            self.issue_cycles += 1
        if self._wants_event():
            self._emit(IssueEvent(cycle, pc, slot))

    def on_stall(self, cycle: int, duration: int, pc: int, cause: str,
                 rclass: RClass, index: int, origin: str | None,
                 category) -> None:
        self.stall_by_cause[cause] += duration
        self.stall_by_origin[origin] += duration
        self.stall_by_category[category] += duration
        self.stall_by_reg[(rclass, index)] += duration
        if self._wants_event():
            self._emit(StallEvent(cycle, duration, pc, cause, rclass, index,
                                  origin, category))

    def on_mem_stall(self, cycle: int, pc: int) -> None:
        self.mem_slot_stalls += 1
        if self._wants_event():
            self._emit(MemStallEvent(cycle, pc))

    def on_redirect(self, cycle: int, pc: int, cause: str,
                    penalty: int) -> None:
        self.redirect_by_cause[cause] += penalty
        if self._wants_event():
            self._emit(RedirectEvent(cycle, pc, cause, penalty))

    def on_connect(self, cycle: int, pc: int, zero_cycle: bool,
                   updates) -> None:
        self.connects += 1
        if zero_cycle:
            self.zero_cycle_connects += 1
        if self._wants_event():
            self._emit(ConnectEvent(cycle, pc, zero_cycle, tuple(updates)))

    def on_map_reset(self, cycle: int, pc: int, cause: str) -> None:
        self.map_resets += 1
        if self._wants_event():
            self._emit(MapResetEvent(cycle, pc, cause))

    # -- derived totals --------------------------------------------------------

    @property
    def stall_cycles(self) -> int:
        return sum(self.stall_by_cause.values())

    @property
    def redirect_cycles(self) -> int:
        return sum(self.redirect_by_cause.values())
