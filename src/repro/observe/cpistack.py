"""CPI-stack analysis: attribute every simulated cycle to exactly one cause.

The paper's arguments are all about *where cycles go* — connects sharing
issue slots with their consumers (section 2.4), interlock stalls from too few
registers, memory-channel contention (Figure 13).  A :class:`CPIStack`
decomposes a run's total cycles into disjoint buckets:

* ``issue``          — cycles in which at least one instruction issued;
* ``raw_interlock``  — zero-issue cycles blocked on a register write in
                       flight (the CRAY-1 interlock);
* ``map_busy``       — zero-issue cycles blocked on a mapping-table entry
                       still being updated by a connect (its effective
                       latency, Figure 12);
* ``redirect:*``     — pipeline refill cycles per cause (misprediction,
                       trap, rte, interrupt).

The decomposition is *checked*, not assumed: :meth:`validate` reconciles the
buckets bit-exactly against the independently maintained
:class:`~repro.sim.stats.SimStats` counters (``issue + zero_issue +
redirect == cycles``), so any future change to the core's cycle accounting
that the event stream misses fails loudly.

Slot-level effects that cap an issue group without emptying the cycle —
memory-channel structural stalls — are reported alongside but excluded from
the cycle identity, since those cycles still issued work.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.registers import RClass
from repro.observe.events import ConnectEvent, IssueEvent, Observer
from repro.sim.stats import ReconcileError, SimStats

#: ``by_origin`` key used for instructions with no compiler-overhead tag.
PROGRAM_ORIGIN = "program"

#: Bucket order for rendering and dict export.
REDIRECT_CAUSES = ("mispredict", "trap", "rte", "interrupt")


@dataclass
class CPIStack:
    """Per-cause cycle attribution for one simulation run."""

    cycles: int
    instructions: int
    issue: int
    raw_interlock: int
    map_busy: int
    redirect_by_cause: Counter = field(default_factory=Counter)
    #: interlock-stall cycles by the *blocked* instruction's provenance
    #: (``program``/``spill``/``connect``/``callsave``/``frame``).
    stall_by_origin: Counter = field(default_factory=Counter)
    #: interlock-stall cycles by the blocked instruction's latency class.
    stall_by_category: Counter = field(default_factory=Counter)
    #: interlock-stall cycles by blocking register ``(rclass, index)``.
    stall_by_reg: Counter = field(default_factory=Counter)
    #: slot-level structural stalls (issue group capped by channel limit).
    mem_slot_stalls: int = 0
    connects: int = 0
    zero_cycle_connects: int = 0
    #: same-cycle consumers that read a mapping connected that very cycle
    #: (the dispatch-stage forwarding of paper Figures 5/6).
    zero_cycle_forwards: int = 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_observer(cls, observer: Observer, stats: SimStats,
                      program=None) -> "CPIStack":
        """Build the stack from a finished run and reconcile it."""
        stall_by_origin = Counter()
        for origin, n in observer.stall_by_origin.items():
            stall_by_origin[origin or PROGRAM_ORIGIN] += n
        stack = cls(
            cycles=stats.cycles,
            instructions=observer.instructions,
            issue=observer.issue_cycles,
            raw_interlock=observer.stall_by_cause.get("raw", 0),
            map_busy=observer.stall_by_cause.get("map", 0),
            redirect_by_cause=Counter(observer.redirect_by_cause),
            stall_by_origin=stall_by_origin,
            stall_by_category=Counter(observer.stall_by_category),
            stall_by_reg=Counter(observer.stall_by_reg),
            mem_slot_stalls=observer.mem_slot_stalls,
            connects=observer.connects,
            zero_cycle_connects=observer.zero_cycle_connects,
        )
        if program is not None and observer.keep_events:
            stack.zero_cycle_forwards = count_zero_cycle_forwards(
                observer.events, program)
        stack.validate(stats)
        return stack

    # -- identities -------------------------------------------------------------

    @property
    def redirect(self) -> int:
        return sum(self.redirect_by_cause.values())

    @property
    def stall(self) -> int:
        return self.raw_interlock + self.map_busy

    def total(self) -> int:
        """Sum of all attributed cycle buckets; must equal ``cycles``."""
        return self.issue + self.raw_interlock + self.map_busy + self.redirect

    def validate(self, stats: SimStats) -> None:
        """Reconcile bit-exactly against the simulator's own counters."""
        stats.reconcile()
        checks = (
            ("attributed total", self.total(), stats.cycles),
            ("issue cycles", self.issue, stats.issue_cycles),
            ("zero-issue cycles", self.stall, stats.zero_issue_cycles),
            ("redirect cycles", self.redirect, stats.redirect_cycles),
            ("instructions", self.instructions, stats.instructions),
        )
        for label, got, want in checks:
            if got != want:
                raise ReconcileError(
                    f"CPI stack does not reconcile with SimStats: "
                    f"{label} {got} != {want}"
                )

    # -- derived views ----------------------------------------------------------

    def components(self) -> dict[str, int]:
        """Ordered bucket -> cycles mapping summing exactly to ``cycles``."""
        out = {
            "issue": self.issue,
            "raw_interlock": self.raw_interlock,
            "map_busy": self.map_busy,
        }
        for cause in REDIRECT_CAUSES:
            out[f"redirect:{cause}"] = self.redirect_by_cause.get(cause, 0)
        for cause in self.redirect_by_cause:
            if cause not in REDIRECT_CAUSES:
                out[f"redirect:{cause}"] = self.redirect_by_cause[cause]
        return out

    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def cpi_of(self, bucket: str) -> float:
        """CPI contribution of one bucket (its cycles per instruction)."""
        if not self.instructions:
            return 0.0
        return self.components().get(bucket, 0) / self.instructions

    def to_dict(self) -> dict:
        """JSON/pickle-friendly form (used by experiment run records)."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "issue": self.issue,
            "raw_interlock": self.raw_interlock,
            "map_busy": self.map_busy,
            "redirect": dict(self.redirect_by_cause),
            "stall_by_origin": dict(self.stall_by_origin),
            "stall_by_category": {c.name: n for c, n
                                  in self.stall_by_category.items()},
            "stall_by_reg": {f"{cls.value}:{idx}": n for (cls, idx), n
                             in self.stall_by_reg.items()},
            "mem_slot_stalls": self.mem_slot_stalls,
            "connects": self.connects,
            "zero_cycle_connects": self.zero_cycle_connects,
            "zero_cycle_forwards": self.zero_cycle_forwards,
        }

    # -- rendering --------------------------------------------------------------

    def render(self) -> str:
        lines = [
            f"cycles {self.cycles}, instructions {self.instructions}, "
            f"CPI {self.cpi():.3f}",
            "cycle attribution:",
        ]
        for name, n in self.components().items():
            if n == 0 and name.startswith("redirect:"):
                continue
            pct = 100.0 * n / self.cycles if self.cycles else 0.0
            bar = "#" * int(round(pct / 2))
            lines.append(f"  {name:<20} {n:>10}  {pct:5.1f}%  {bar}")
        if self.stall:
            lines.append("interlock stalls by blocked-instruction origin:")
            for origin, n in self.stall_by_origin.most_common():
                lines.append(f"  {origin:<12} {n}")
            lines.append("interlock stalls by blocked-instruction class:")
            for cat, n in self.stall_by_category.most_common():
                lines.append(f"  {cat.value:<14} {n}")
            top = self.stall_by_reg.most_common(5)
            if top:
                regs = ", ".join(f"{cls.value}{idx} ({n})"
                                 for (cls, idx), n in top)
                lines.append(f"hottest blocking registers: {regs}")
        if self.mem_slot_stalls:
            lines.append(f"mem-channel slot stalls  {self.mem_slot_stalls} "
                         "(issue groups capped, cycles still issued)")
        if self.connects:
            lines.append(
                f"connects {self.connects} "
                f"({self.zero_cycle_connects} zero-cycle, "
                f"{self.zero_cycle_forwards} same-cycle forwards)")
        return "\n".join(lines)


def count_zero_cycle_forwards(events, program) -> int:
    """Count same-cycle consumers of a just-connected read mapping.

    A zero-cycle connect (paper Figures 5/6) lets an instruction issued later
    in the *same* cycle read through the mapping entry the connect just
    updated; this walks the event stream in issue order and counts those
    consumers.
    """
    forwards = 0
    cycle = -1
    fresh: set[tuple[RClass, int]] = set()
    for ev in events:
        if isinstance(ev, ConnectEvent):
            if ev.cycle != cycle:
                cycle = ev.cycle
                fresh.clear()
            if ev.zero_cycle:
                for rclass, which, idx, _phys in ev.updates:
                    if which == "read":
                        fresh.add((rclass, idx))
        elif isinstance(ev, IssueEvent):
            if ev.cycle != cycle:
                cycle = ev.cycle
                fresh.clear()
                continue
            if not fresh:
                continue
            instr = program.instrs[ev.pc]
            for src in instr.reg_srcs():
                if (src.cls, src.num) in fresh:
                    forwards += 1
                    break
    return forwards


def merge_cpi(dicts) -> dict | None:
    """Sum a sequence of :meth:`CPIStack.to_dict` payloads (for footers)."""
    total: dict | None = None
    for d in dicts:
        if d is None:
            continue
        if total is None:
            total = {"cycles": 0, "instructions": 0, "issue": 0,
                     "raw_interlock": 0, "map_busy": 0, "redirect": {},
                     "mem_slot_stalls": 0, "connects": 0,
                     "zero_cycle_connects": 0}
        for key in ("cycles", "instructions", "issue", "raw_interlock",
                    "map_busy", "mem_slot_stalls", "connects",
                    "zero_cycle_connects"):
            total[key] += d.get(key, 0)
        for cause, n in d.get("redirect", {}).items():
            total["redirect"][cause] = total["redirect"].get(cause, 0) + n
    return total


def stall_mix_summary(merged: dict | None) -> str:
    """One-line stall-cause composition for figure footers."""
    if not merged or not merged.get("cycles"):
        return "cpi: no data"
    cycles = merged["cycles"]
    redirect = sum(merged["redirect"].values())

    def pct(n: int) -> str:
        return f"{100.0 * n / cycles:.1f}%"

    return (
        f"cpi mix: issue {pct(merged['issue'])}, "
        f"raw {pct(merged['raw_interlock'])}, "
        f"map {pct(merged['map_busy'])}, redirect {pct(redirect)}"
    )


__all__ = [
    "CPIStack",
    "PROGRAM_ORIGIN",
    "ReconcileError",
    "count_zero_cycle_forwards",
    "merge_cpi",
    "stall_mix_summary",
]
