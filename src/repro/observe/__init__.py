"""``repro.observe`` — structured tracing, CPI stacks, and trace exporters.

The observability layer of the reproduction:

* :mod:`repro.observe.events` — the typed event bus the simulator core emits
  into (zero overhead when no observer is attached);
* :mod:`repro.observe.cpistack` — per-cause cycle attribution, reconciled
  bit-exactly against :class:`~repro.sim.stats.SimStats`;
* :mod:`repro.observe.export` — Chrome trace-event JSON (Perfetto), Konata
  pipeline-viewer logs, and JSONL event dumps;
* :mod:`repro.observe.passes` — per-pass compiler wall time and IR deltas.

:func:`observe_run` is the one-call entry point: simulate a program with an
observer attached and get back the result, event stream, and validated CPI
stack together.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observe.cpistack import (
    CPIStack,
    count_zero_cycle_forwards,
    merge_cpi,
    stall_mix_summary,
)
from repro.observe.events import (
    STALL_MAP,
    STALL_RAW,
    ConnectEvent,
    Event,
    EventForwarder,
    IssueEvent,
    MapResetEvent,
    MemStallEvent,
    Observer,
    RedirectEvent,
    StallEvent,
    event_to_dict,
)
from repro.observe.export import (
    chrome_trace,
    chrome_trace_json,
    events_jsonl,
    konata_log,
)
from repro.observe.passes import PassMetrics, PassRecord
from repro.sim.config import MachineConfig
from repro.sim.core import SimResult, Simulator
from repro.sim.program import MachineProgram
from repro.sim.stats import ReconcileError


@dataclass
class ObservedRun:
    """A finished simulation plus its event stream and CPI stack."""

    program: MachineProgram
    config: MachineConfig
    observer: Observer
    result: SimResult
    stack: CPIStack


def observe_run(program: MachineProgram, config: MachineConfig,
                keep_events: bool = True,
                limit: int = 1_000_000) -> ObservedRun:
    """Simulate *program* with an observer attached.

    ``keep_events=False`` keeps only the aggregate counters (what the sweep
    executor uses); the returned CPI stack is validated against the run's
    :class:`~repro.sim.stats.SimStats` either way.
    """
    observer = Observer(keep_events=keep_events, limit=limit)
    result = Simulator(program, config, observer=observer).run()
    stack = CPIStack.from_observer(observer, result.stats, program=program)
    return ObservedRun(program=program, config=config, observer=observer,
                       result=result, stack=stack)


__all__ = [
    "CPIStack",
    "ConnectEvent",
    "Event",
    "EventForwarder",
    "IssueEvent",
    "MapResetEvent",
    "MemStallEvent",
    "ObservedRun",
    "Observer",
    "PassMetrics",
    "PassRecord",
    "ReconcileError",
    "RedirectEvent",
    "STALL_MAP",
    "STALL_RAW",
    "StallEvent",
    "chrome_trace",
    "chrome_trace_json",
    "count_zero_cycle_forwards",
    "event_to_dict",
    "events_jsonl",
    "konata_log",
    "merge_cpi",
    "observe_run",
    "stall_mix_summary",
]
