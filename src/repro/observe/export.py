"""Trace exporters: Chrome trace-event JSON, Konata pipeline logs, JSONL.

Three interchange formats over one :class:`~repro.observe.ObservedRun`:

* :func:`chrome_trace` / :func:`chrome_trace_json` — the Chrome trace-event
  format (``{"traceEvents": [...]}``), loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Issue slots become
  tracks; interlock stalls, redirects, and connect events get their own
  lanes, so a Figure-13 memory-channel bottleneck is visible as a wall of
  structural-stall markers.  One simulated cycle maps to one microsecond of
  trace time.
* :func:`konata_log` — the Kanata log format consumed by the Konata pipeline
  viewer (https://github.com/shioyadan/Konata): per-dynamic-instruction
  fetch/issue/execute stage bars with disassembly labels.
* :func:`events_jsonl` — newline-delimited JSON, one event per line, for
  ad-hoc analysis with ``jq``/pandas.
"""

from __future__ import annotations

import json

from repro.isa.asmfmt import format_instr
from repro.observe.events import (
    ConnectEvent,
    IssueEvent,
    MapResetEvent,
    MemStallEvent,
    RedirectEvent,
    StallEvent,
    event_to_dict,
)

#: Synthetic pid for the simulated core in Chrome traces.
_PID = 1


def _event_payload(ev) -> dict:
    """The JSONL representation of one event (the canonical wire form)."""
    return event_to_dict(ev)


def events_jsonl(run) -> str:
    """One JSON object per line, in simulation order."""
    return "\n".join(json.dumps(_event_payload(ev))
                     for ev in run.observer.events)


# -- Chrome trace-event format ---------------------------------------------------


def chrome_trace(run) -> dict:
    """Build the trace-event document (Perfetto / chrome://tracing)."""
    program = run.program
    latency = run.config.latency
    width = run.config.issue_width
    stall_tid = width          # lane after the issue slots
    redirect_tid = width + 1
    connect_tid = width + 2

    events: list[dict] = [
        {"ph": "M", "pid": _PID, "name": "process_name",
         "args": {"name": f"repro-sim {program.name}"}},
    ]
    for slot in range(width):
        events.append({"ph": "M", "pid": _PID, "tid": slot,
                       "name": "thread_name",
                       "args": {"name": f"issue slot {slot}"}})
    for tid, name in ((stall_tid, "interlock stalls"),
                      (redirect_tid, "redirects"),
                      (connect_tid, "map events")):
        events.append({"ph": "M", "pid": _PID, "tid": tid,
                       "name": "thread_name", "args": {"name": name}})

    for ev in run.observer.events:
        if isinstance(ev, IssueEvent):
            instr = program.instrs[ev.pc]
            events.append({
                "ph": "X", "pid": _PID, "tid": ev.slot,
                "ts": ev.cycle, "dur": max(1, latency.of(instr.op)),
                "name": format_instr(instr), "cat": instr.category.name,
                "args": {"pc": ev.pc, "origin": instr.origin or "program"},
            })
        elif isinstance(ev, StallEvent):
            events.append({
                "ph": "X", "pid": _PID, "tid": stall_tid,
                "ts": ev.cycle, "dur": ev.duration,
                "name": f"stall {ev.cause} {ev.rclass.value}{ev.index}",
                "cat": "stall",
                "args": {"pc": ev.pc, "blocked": format_instr(
                    program.instrs[ev.pc])},
            })
        elif isinstance(ev, RedirectEvent):
            events.append({
                "ph": "X", "pid": _PID, "tid": redirect_tid,
                "ts": ev.cycle + 1, "dur": ev.penalty,
                "name": f"redirect {ev.cause}", "cat": "redirect",
                "args": {"pc": ev.pc},
            })
        elif isinstance(ev, MemStallEvent):
            events.append({
                "ph": "i", "pid": _PID, "tid": stall_tid, "ts": ev.cycle,
                "s": "t", "name": "mem channel full", "cat": "structural",
                "args": {"pc": ev.pc},
            })
        elif isinstance(ev, ConnectEvent):
            events.append({
                "ph": "i", "pid": _PID, "tid": connect_tid, "ts": ev.cycle,
                "s": "t",
                "name": ("connect (0-cycle)" if ev.zero_cycle
                         else "connect"),
                "cat": "connect", "args": {"pc": ev.pc},
            })
        elif isinstance(ev, MapResetEvent):
            events.append({
                "ph": "i", "pid": _PID, "tid": connect_tid, "ts": ev.cycle,
                "s": "t", "name": f"map reset ({ev.cause})", "cat": "connect",
                "args": {"pc": ev.pc},
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "machine": run.config.describe(),
            "cycles": run.result.stats.cycles,
            "instructions": run.result.stats.instructions,
        },
    }


def chrome_trace_json(run, indent: int | None = None) -> str:
    return json.dumps(chrome_trace(run), indent=indent)


# -- Konata (Kanata log) format --------------------------------------------------


def konata_log(run) -> str:
    """Render the run as a Kanata 0004 log for the Konata pipeline viewer.

    Each dynamic instruction gets a one-cycle issue stage (``Is``) followed
    by an execute stage (``Ex``) for its remaining latency; interlock stalls
    appear as a pre-issue ``St`` stage on the instruction that was blocked.
    """
    program = run.program
    latency = run.config.latency
    issues = [ev for ev in run.observer.events if isinstance(ev, IssueEvent)]
    #: pc -> pending stall duration for the next issue of that pc.
    stalls: dict[int, list[StallEvent]] = {}
    for ev in run.observer.events:
        if isinstance(ev, StallEvent):
            stalls.setdefault(ev.pc, []).append(ev)

    # Per-cycle command lists, emitted in cycle order with C deltas.
    by_cycle: dict[int, list[str]] = {}

    def at(cycle: int, line: str) -> None:
        by_cycle.setdefault(cycle, []).append(line)

    for seq, ev in enumerate(issues):
        instr = program.instrs[ev.pc]
        start = ev.cycle
        pending = stalls.get(ev.pc)
        stall_ev = None
        if pending and pending[0].cycle < ev.cycle:
            stall_ev = pending.pop(0)
            start = stall_ev.cycle
        at(start, f"I\t{seq}\t{seq}\t0")
        at(start, f"L\t{seq}\t0\t{format_instr(instr)}")
        if stall_ev is not None:
            at(start, f"S\t{seq}\t0\tSt")
            at(ev.cycle, f"E\t{seq}\t0\tSt")
        at(ev.cycle, f"S\t{seq}\t0\tIs")
        lat = max(1, latency.of(instr.op))
        end = ev.cycle + lat
        if lat > 1:
            at(ev.cycle + 1, f"E\t{seq}\t0\tIs")
            at(ev.cycle + 1, f"S\t{seq}\t0\tEx")
            at(end, f"E\t{seq}\t0\tEx")
        else:
            at(end, f"E\t{seq}\t0\tIs")
        at(end, f"R\t{seq}\t{seq}\t0")

    lines = ["Kanata\t0004"]
    prev = None
    for cycle in sorted(by_cycle):
        if prev is None:
            lines.append(f"C=\t{cycle}")
        else:
            lines.append(f"C\t{cycle - prev}")
        prev = cycle
        lines.extend(by_cycle[cycle])
    return "\n".join(lines) + "\n"
