"""Compiler-side observability: per-pass wall time and IR deltas.

A :class:`PassMetrics` instance is threaded through
:func:`repro.compiler.pipeline.compile_module`; each stage runs inside
:meth:`PassMetrics.measure`, which snapshots the module before and after —
instruction count, distinct virtual registers, and compiler-inserted
spill/connect/callsave instructions — and records wall time.  The resulting
table answers "which pass is slow" and "which pass added that code"
(Figure 9's static-overhead story, per pass instead of per program).

This module deliberately imports nothing from :mod:`repro.compiler`: it
inspects IR through the generic ``Module``/``Function`` iteration surface,
so the compiler depends on it and not vice versa.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.isa.registers import VReg

#: origins counted as compiler-inserted overhead (spill code, connects,
#: caller saves of extended registers, frame setup).
OVERHEAD_ORIGINS = ("spill", "connect", "callsave", "frame")


@dataclass(frozen=True)
class IRSnapshot:
    """Counts describing a module at one point in the pipeline."""

    instrs: int
    vregs: int
    overhead: dict

    @classmethod
    def of(cls, module) -> "IRSnapshot":
        instrs = 0
        vregs: set = set()
        overhead = dict.fromkeys(OVERHEAD_ORIGINS, 0)
        for fn in module.functions.values():
            for _block, instr in fn.iter_instrs():
                instrs += 1
                if instr.origin in overhead:
                    overhead[instr.origin] += 1
                for reg in instr.regs():
                    if isinstance(reg, VReg):
                        vregs.add(reg)
        return cls(instrs=instrs, vregs=len(vregs), overhead=overhead)


@dataclass
class PassRecord:
    """Wall time and IR delta of one compiler pass."""

    name: str
    seconds: float
    before: IRSnapshot
    after: IRSnapshot

    @property
    def instr_delta(self) -> int:
        return self.after.instrs - self.before.instrs

    @property
    def vreg_delta(self) -> int:
        return self.after.vregs - self.before.vregs

    @property
    def spill_delta(self) -> int:
        return self.after.overhead["spill"] - self.before.overhead["spill"]


class PassMetrics:
    """Collects :class:`PassRecord` entries across one compilation."""

    def __init__(self) -> None:
        self.records: list[PassRecord] = []

    @contextmanager
    def measure(self, name: str, module):
        """Run a pass body, snapshotting *module* around it."""
        before = IRSnapshot.of(module)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.records.append(PassRecord(
                name=name, seconds=elapsed,
                before=before, after=IRSnapshot.of(module)))

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def to_rows(self) -> list[dict]:
        """JSON-friendly rows (one per pass, pipeline order)."""
        return [
            {
                "pass": r.name,
                "seconds": r.seconds,
                "instrs": r.after.instrs,
                "instr_delta": r.instr_delta,
                "vregs": r.after.vregs,
                "vreg_delta": r.vreg_delta,
                "spill_delta": r.spill_delta,
            }
            for r in self.records
        ]

    def render(self) -> str:
        header = (f"{'pass':<18} {'time':>9} {'instrs':>8} {'Δinstr':>8} "
                  f"{'vregs':>7} {'Δvreg':>7} {'Δspill':>7}")
        lines = [header, "-" * len(header)]
        for r in self.records:
            lines.append(
                f"{r.name:<18} {r.seconds * 1e3:>7.1f}ms "
                f"{r.after.instrs:>8} {r.instr_delta:>+8} "
                f"{r.after.vregs:>7} {r.vreg_delta:>+7} "
                f"{r.spill_delta:>+7}"
            )
        lines.append(f"{'total':<18} {self.total_seconds * 1e3:>7.1f}ms")
        return "\n".join(lines)


@contextmanager
def maybe_measure(metrics: PassMetrics | None, name: str, module):
    """``metrics.measure`` when metrics are collected, else a no-op."""
    if metrics is None:
        yield
    else:
        with metrics.measure(name, module):
            yield
