"""Machine configurations for the cycle-level simulator.

The underlying microarchitecture follows paper section 5.2: an in-order
superscalar with deterministic instruction latencies (Table 1), CRAY-1 style
register interlocking, homogeneous pipelined function units (any instruction
mix may issue in parallel), and memory accesses restricted to a subset of the
issue slots (two memory channels for the 2- and 4-issue models, four for the
8-issue model).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.isa.latency import LatencyModel
from repro.isa.registers import (
    RC_TOTAL_REGISTERS,
    RClass,
    RegFileSpec,
    core_spec,
    rc_spec,
    unlimited_spec,
)
from repro.rc.models import DEFAULT_MODEL, RCModel

VALID_ISSUE_WIDTHS = (1, 2, 4, 8)

#: Environment variable consulted when no explicit engine is requested.
ENGINE_ENV = "REPRO_ENGINE"

#: Recognised execution engines: the specializing fast path (default), the
#: straight-line reference interpreter in :mod:`repro.sim.core`, and the
#: gang simulator in :mod:`repro.sim.batched` (a single-config gang when
#: selected through :func:`repro.sim.simulate`; sweeps use full gangs).
VALID_ENGINES = ("fast", "reference", "batched")


def resolve_engine(engine: str | None = None) -> str:
    """Resolve an engine request to a member of :data:`VALID_ENGINES`.

    ``None``, ``""`` and ``"auto"`` defer to the :data:`ENGINE_ENV`
    environment variable, falling back to ``"fast"``.  Anything else must
    name a valid engine.
    """
    if engine in (None, "", "auto"):
        engine = os.environ.get(ENGINE_ENV, "").strip() or "fast"
    if engine not in VALID_ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r}; expected one of {VALID_ENGINES}"
        )
    return engine


def default_memory_channels(issue_width: int) -> int:
    """Paper section 5.2: 2 channels for 2/4-issue, 4 for 8-issue."""
    return 4 if issue_width >= 8 else 2


@dataclass(frozen=True)
class MachineConfig:
    """A complete simulated machine configuration."""

    issue_width: int = 4
    mem_channels: int = 2
    latency: LatencyModel = field(default_factory=LatencyModel)
    int_spec: RegFileSpec = field(
        default_factory=lambda: core_spec(RClass.INT, 64)
    )
    fp_spec: RegFileSpec = field(
        default_factory=lambda: core_spec(RClass.FP, 64)
    )
    rc_model: RCModel = DEFAULT_MODEL
    #: Figure 12: model an additional pipeline stage for accessing the
    #: register mapping table; costs one extra cycle on every branch
    #: misprediction redirect.
    extra_decode_stage: bool = False
    max_cycles: int = 200_000_000

    def __post_init__(self) -> None:
        if self.issue_width not in VALID_ISSUE_WIDTHS:
            raise ConfigError(f"issue width must be one of {VALID_ISSUE_WIDTHS}")
        if self.mem_channels < 1:
            raise ConfigError("need at least one memory channel")
        if self.int_spec.cls is not RClass.INT:
            raise ConfigError("int_spec must describe the integer file")
        if self.fp_spec.cls is not RClass.FP:
            raise ConfigError("fp_spec must describe the FP file")

    @property
    def has_rc(self) -> bool:
        return self.int_spec.has_rc or self.fp_spec.has_rc

    @property
    def redirect_penalty(self) -> int:
        """Cycles lost on a branch misprediction redirect."""
        return 1 + (1 if self.extra_decode_stage else 0)

    def spec_for(self, cls: RClass) -> RegFileSpec:
        return self.int_spec if cls is RClass.INT else self.fp_spec

    def describe(self) -> str:
        rc = []
        if self.int_spec.has_rc:
            rc.append(f"int RC {self.int_spec.core}+{self.int_spec.extended}")
        if self.fp_spec.has_rc:
            rc.append(f"fp RC {self.fp_spec.core}+{self.fp_spec.extended}")
        rc_text = ", ".join(rc) if rc else "no RC"
        return (
            f"{self.issue_width}-issue, {self.mem_channels} mem channels, "
            f"load={self.latency.load}, connect={self.latency.connect}, "
            f"{rc_text}"
        )


def paper_machine(
    issue_width: int = 4,
    load_latency: int = 2,
    int_core: int = 64,
    fp_core: int = 64,
    rc_class: RClass | None = None,
    rc_model: RCModel = DEFAULT_MODEL,
    connect_latency: int = 0,
    extra_decode_stage: bool = False,
    mem_channels: int | None = None,
    rc_total: int = RC_TOTAL_REGISTERS,
) -> MachineConfig:
    """Build a configuration in the paper's experimental style.

    ``rc_class`` selects which register file (if any) receives the RC
    extension; the experiments apply RC to the integer file for integer
    benchmarks and to the FP file for FP benchmarks, with the other file
    fixed at 64 core registers.
    """
    if rc_class is RClass.INT:
        int_spec = rc_spec(RClass.INT, int_core, rc_total)
    else:
        int_spec = core_spec(RClass.INT, int_core)
    if rc_class is RClass.FP:
        fp_spec = rc_spec(RClass.FP, fp_core, rc_total)
    else:
        fp_spec = core_spec(RClass.FP, fp_core)
    return MachineConfig(
        issue_width=issue_width,
        mem_channels=(mem_channels if mem_channels is not None
                      else default_memory_channels(issue_width)),
        latency=LatencyModel(load=load_latency, connect=connect_latency),
        int_spec=int_spec,
        fp_spec=fp_spec,
        rc_model=rc_model,
        extra_decode_stage=extra_decode_stage,
    )


def unlimited_machine(issue_width: int = 1, load_latency: int = 2,
                      mem_channels: int | None = None) -> MachineConfig:
    """The paper's "unlimited number of registers" reference machine."""
    return MachineConfig(
        issue_width=issue_width,
        mem_channels=(mem_channels if mem_channels is not None
                      else default_memory_channels(issue_width)),
        latency=LatencyModel(load=load_latency),
        int_spec=unlimited_spec(RClass.INT),
        fp_spec=unlimited_spec(RClass.FP),
    )
