"""Pipeline tracing and text visualization.

Uses the simulator's per-issue hook to record ``(cycle, pc)`` pairs and
renders them as an annotated listing: a ``|`` marks the start of each issue
group, so issue-width utilization and stalls are visible at a glance —
exactly the view needed to see zero-cycle connects sharing a cycle with
their consumers (paper section 2.4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.asmfmt import format_instr
from repro.sim.config import MachineConfig
from repro.sim.core import Simulator
from repro.sim.program import MachineProgram
from repro.sim.stats import SimStats


@dataclass
class PipelineTrace:
    """A recorded issue trace for one program on one machine."""

    program: MachineProgram
    config: MachineConfig
    events: list[tuple[int, int]] = field(default_factory=list)  # (cycle, pc)
    truncated: bool = False
    #: the run's statistics, attached by :func:`capture_trace` so callers
    #: get counters and the trace from a single simulation.
    stats: SimStats | None = None

    # -- metrics ---------------------------------------------------------------

    def issue_group_sizes(self) -> Counter:
        """Histogram of instructions issued per (non-empty) cycle."""
        sizes: Counter = Counter()
        per_cycle: Counter = Counter(cycle for cycle, _pc in self.events)
        for _cycle, n in per_cycle.items():
            sizes[n] += 1
        return sizes

    def elapsed_cycles(self) -> int:
        """Total cycles the trace window spans.

        The run's full cycle count when stats are attached (and the trace
        was not truncated); otherwise the span of recorded events — the
        best available bound for hand-built or truncated traces.
        """
        if self.stats is not None and not self.truncated:
            return self.stats.cycles
        if not self.events:
            return 0
        first = self.events[0][0]
        last = self.events[-1][0]
        return last - first + 1

    def utilization(self) -> float:
        """Issued instructions / (elapsed cycles x issue width).

        True slot utilization: zero-issue (stall and redirect) cycles count
        against it.  See :meth:`issue_cycle_utilization` for the
        issued-cycles-only view this method historically reported.
        """
        cycles = self.elapsed_cycles()
        if not cycles:
            return 0.0
        return len(self.events) / (cycles * self.config.issue_width)

    def issue_cycle_utilization(self) -> float:
        """Issued instructions / (non-empty cycles x issue width)."""
        if not self.events:
            return 0.0
        cycles = len({c for c, _ in self.events})
        return len(self.events) / (cycles * self.config.issue_width)

    def dual_issue_pairs(self, first_pc: int, second_pc: int) -> int:
        """How often *first_pc* and *second_pc* issued in the same cycle."""
        by_cycle: dict[int, set[int]] = {}
        for cycle, pc in self.events:
            by_cycle.setdefault(cycle, set()).add(pc)
        return sum(1 for pcs in by_cycle.values()
                   if first_pc in pcs and second_pc in pcs)

    # -- rendering ----------------------------------------------------------------

    def render(self, start: int = 0, count: int = 40) -> str:
        """Render *count* trace events starting at event *start*.

        ``|`` marks the first instruction of each issue group; the cycle
        column is relative to the first rendered event.
        """
        window = self.events[start: start + count]
        if not window:
            return "(empty trace window)"
        base = window[0][0]
        lines = []
        prev_cycle = None
        for cycle, pc in window:
            marker = "|" if cycle != prev_cycle else " "
            prev_cycle = cycle
            text = format_instr(self.program.instrs[pc])
            lines.append(f"{marker} c+{cycle - base:4d}  pc{pc:5d}  {text}")
        if self.truncated and start + count >= len(self.events):
            lines.append("  ... trace truncated at the record limit ...")
        return "\n".join(lines)

    def summary(self) -> str:
        sizes = self.issue_group_sizes()
        total_cycles = len({c for c, _ in self.events})
        lines = [
            f"events            {len(self.events)}"
            + (" (truncated)" if self.truncated else ""),
            f"elapsed cycles    {self.elapsed_cycles()}",
            f"non-empty cycles  {total_cycles}",
            f"slot utilization  {100 * self.utilization():.1f}% "
            f"of {self.config.issue_width} slots/cycle "
            f"({100 * self.issue_cycle_utilization():.1f}% of issue cycles)",
            "issue-group sizes:",
        ]
        for size in sorted(sizes):
            lines.append(f"  {size} instr(s): {sizes[size]} cycles")
        return "\n".join(lines)


def capture_trace(program: MachineProgram, config: MachineConfig,
                  limit: int = 200_000) -> PipelineTrace:
    """Run *program* recording up to *limit* issue events."""
    trace = PipelineTrace(program, config)
    events = trace.events

    def hook(cycle: int, pc: int) -> None:
        if len(events) < limit:
            events.append((cycle, pc))
        else:
            trace.truncated = True

    result = Simulator(program, config, trace_hook=hook).run()
    trace.stats = result.stats
    return trace
