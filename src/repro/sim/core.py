"""Cycle-level, execution-driven simulator of the superscalar core.

Microarchitectural model (paper section 5.2 and Figure 1):

* in-order multi-issue (1/2/4/8-wide) with homogeneous pipelined function
  units: any combination of instructions may issue together, except that
  memory operations are limited to ``mem_channels`` per cycle;
* deterministic latencies (Table 1) with CRAY-1 style register interlocking:
  an instruction issues only when its source registers are ready and its
  destination register has no write in flight;
* RC decode path: register indices are translated through the register
  mapping table before the register file access; connect instructions update
  the table with configurable 0- or 1-cycle effective latency (section 2.4 —
  zero-cycle latency models the dispatch-stage forwarding of Figures 5/6);
* static branch prediction from compiler hints (profile-driven) with a
  backward-taken fallback; a misprediction redirect costs one cycle, plus one
  more when the optional extra decode/dispatch stage for the mapping table is
  configured (Figure 12);
* ``jsr``/``rts`` (CALL/RET) reset the mapping table to home locations
  (section 4.1); traps clear the PSW map-enable flag so handlers bypass the
  map, and ``rte`` restores it (section 4.3).

Values are computed at issue time through the shared semantics module, so a
run is execution-driven: the simulator produces the program's actual outputs,
which tests compare against the IR interpreter's golden results.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import CycleBudgetError, SimulationError
from repro.isa.opcodes import Opcode
from repro.isa.registers import Imm, PhysReg, RClass
from repro.isa.semantics import ALU_FUNCS, BRANCH_FUNCS
from repro.rc.psw import PSW
from repro.sim.config import MachineConfig
from repro.sim.machine import MachineState
from repro.sim.program import MachineProgram
from repro.sim.stats import SimStats

# Decoded instruction kinds.
K_ALU, K_LI, K_LOAD, K_STORE, K_CBR, K_JMP, K_CALL, K_RET, K_HALT, \
    K_CONNECT, K_TRAP, K_RTE, K_MFPSW, K_MTPSW, K_MFMAP, K_NOP = range(16)

_SRC_IMM, _SRC_INT, _SRC_FP = 0, 1, 2

_KIND_BY_OP = {
    Opcode.LI: K_LI, Opcode.LIF: K_LI,
    Opcode.LOAD: K_LOAD, Opcode.FLOAD: K_LOAD,
    Opcode.STORE: K_STORE, Opcode.FSTORE: K_STORE,
    Opcode.JMP: K_JMP, Opcode.CALL: K_CALL, Opcode.RET: K_RET,
    Opcode.HALT: K_HALT,
    Opcode.CUSE: K_CONNECT, Opcode.CDEF: K_CONNECT, Opcode.CUU: K_CONNECT,
    Opcode.CDU: K_CONNECT, Opcode.CDD: K_CONNECT,
    Opcode.TRAP: K_TRAP, Opcode.RTE: K_RTE,
    Opcode.MFPSW: K_MFPSW, Opcode.MTPSW: K_MTPSW, Opcode.MFMAP: K_MFMAP,
    Opcode.NOP: K_NOP,
}


class _Dec:
    """A decoded instruction: everything the issue loop needs, precomputed."""

    __slots__ = ("kind", "op", "category", "srcs", "dest", "imm", "latency",
                 "target", "pred_taken", "alu", "brf", "updates", "origin")

    def __init__(self) -> None:
        self.updates = None
        self.alu = None
        self.brf = None
        self.pred_taken = False
        self.target = None


#: Sentinel distinguishing "no default supplied" from ``default=None``.
_UNWRITTEN = object()


@dataclass
class SimResult:
    """Outcome of one simulation run (or run segment, when resumable)."""

    stats: SimStats
    state: MachineState
    halted: bool = True

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    def load_word(self, addr: int, default: object = _UNWRITTEN) -> int | float:
        """Read back a memory word from the final machine state.

        Raises :class:`SimulationError` when *addr* was never written during
        the run (unless *default* is given) — a silent 0 here can mask a
        checksum-address typo in a new workload.
        """
        try:
            return self.state.memory[addr]
        except KeyError:
            if default is not _UNWRITTEN:
                return default  # type: ignore[return-value]
            raise SimulationError(
                f"load_word({addr}): address was never written during the "
                f"run (pass default= to allow unwritten reads)"
            ) from None


class Simulator:
    """Simulates one :class:`MachineProgram` on one machine configuration."""

    def __init__(self, program: MachineProgram, config: MachineConfig,
                 trace_hook=None, observer=None, *, decoded=None) -> None:
        self.program = program
        self.config = config
        self.state = MachineState(config, program.initial_memory)
        self.state.int_regs[0] = program.initial_sp  # r0 = SP
        # Decode depends only on (program, latency table, register specs) —
        # never on width, RC model, or pipeline knobs — so a caller sweeping
        # those axes may pass a prior simulator's decode list instead of
        # re-decoding (entries are write-once; see _decode).
        if decoded is not None:
            self._decoded = decoded
        else:
            self._decoded = [self._decode(i, instr)
                             for i, instr in enumerate(program.instrs)]
        #: externally scheduled interrupts: sorted (cycle, vector) pairs.
        self._interrupts: list[tuple[int, int]] = []
        #: optional per-issue callback ``hook(cycle, pc)`` for debugging and
        #: pipeline visualization; adds overhead only when set.
        self.trace_hook = trace_hook
        #: optional structured-event sink (:class:`repro.observe.Observer`);
        #: hooks are guarded by a single ``is not None`` test and only read
        #: simulation state, so observation never perturbs results.
        self.observer = observer

    # -- decoding ---------------------------------------------------------------

    def _decode(self, index: int, instr) -> _Dec:
        config = self.config
        d = _Dec()
        d.op = instr.op
        d.category = instr.category
        d.imm = instr.imm
        d.origin = instr.origin
        d.kind = _KIND_BY_OP.get(instr.op, K_ALU)
        if instr.is_cond_branch:
            d.kind = K_CBR
            d.brf = BRANCH_FUNCS[instr.op]
        if d.kind == K_ALU:
            d.alu = ALU_FUNCS[instr.op]
        d.latency = config.latency.of(instr.op)
        d.target = self.program.targets[index]
        if d.kind == K_CBR:
            if instr.hint_taken is not None:
                d.pred_taken = instr.hint_taken
            else:
                d.pred_taken = d.target is not None and d.target <= index

        srcs = []
        for s in instr.srcs:
            if isinstance(s, Imm):
                srcs.append((_SRC_IMM, s.value))
            else:
                self._check_reg(index, s)
                srcs.append((_SRC_INT if s.cls is RClass.INT else _SRC_FP,
                             s.num))
        d.srcs = tuple(srcs)
        if instr.dest is not None:
            self._check_reg(index, instr.dest)
            d.dest = (instr.dest.cls is RClass.INT, instr.dest.num)
        else:
            d.dest = None
        if d.kind == K_CONNECT:
            d.updates = instr.connect_updates()
            for rclass, _which, idx, phys in d.updates:
                spec = config.spec_for(rclass)
                if not spec.has_rc:
                    raise SimulationError(
                        f"instr {index}: connect on a machine without RC "
                        f"support for the {rclass.value} file"
                    )
                if not 0 <= idx < spec.core or not 0 <= phys < spec.total:
                    raise SimulationError(
                        f"instr {index}: connect operand out of range"
                    )
        return d

    def _check_reg(self, index: int, reg: PhysReg) -> None:
        spec = self.config.spec_for(reg.cls)
        limit = spec.core  # the encodable operand field covers core indices
        if not 0 <= reg.num < limit:
            raise SimulationError(
                f"instr {index}: register {reg!r} not addressable with a "
                f"{limit}-entry {reg.cls.value} operand field"
            )
        if reg.cls is RClass.FP and reg.num % 2 != 0:
            raise SimulationError(
                f"instr {index}: FP operand {reg!r} is not pair-aligned"
            )

    # -- stall diagnosis (cold path, observer only) -------------------------------

    def _blocking_source(self, d, cycle: int, map_en: bool):
        """Identify which register set the interlock bound for *d*.

        Mirrors the operand-resolution walk of :meth:`run` (first strict
        maximum wins, in source-then-destination order) so the attributed
        register is exactly the one whose ready time became ``next_cycle``.
        Returns ``(cause, rclass, index)`` where cause is ``"map"`` for a
        mapping-table entry still being updated by a connect in flight, or
        ``"raw"`` for a register write in flight (CRAY-1 interlock).
        """
        state = self.state
        iready, fready = self._iready, self._fready
        itab, ftab = state.int_table, state.fp_table
        imr_r, imr_w = self._imr_r, self._imr_w
        fmr_r, fmr_w = self._fmr_r, self._fmr_w
        ient, fent = len(imr_r), len(fmr_r)
        best = cycle
        found = ("raw", RClass.INT, 0)
        for mode, payload in d.srcs:
            if mode == _SRC_IMM:
                continue
            if mode == _SRC_INT:
                if map_en and payload < ient:
                    r = imr_r[payload]
                    if r > best:
                        best, found = r, ("map", RClass.INT, payload)
                    phys = itab.read_map[payload]
                else:
                    phys = payload
                r = iready[phys]
                if r > best:
                    best, found = r, ("raw", RClass.INT, phys)
            else:
                if map_en and payload < fent:
                    r = fmr_r[payload]
                    if r > best:
                        best, found = r, ("map", RClass.FP, payload)
                    phys = ftab.read_map[payload]
                else:
                    phys = payload
                r = fready[phys]
                if r > best:
                    best, found = r, ("raw", RClass.FP, phys)
        dest = d.dest
        if dest is not None:
            dest_is_int, num = dest
            if dest_is_int:
                if map_en and num < ient:
                    r = imr_w[num]
                    if r > best:
                        best, found = r, ("map", RClass.INT, num)
                    physd = itab.write_map[num]
                else:
                    physd = num
                r = iready[physd]
                if r > best:
                    best, found = r, ("raw", RClass.INT, physd)
            else:
                if map_en and num < fent:
                    r = fmr_w[num]
                    if r > best:
                        best, found = r, ("map", RClass.FP, num)
                    physd = ftab.write_map[num]
                else:
                    physd = num
                r = fready[physd]
                if r > best:
                    best, found = r, ("raw", RClass.FP, physd)
        return found

    # -- interrupt injection (section 4.3) ----------------------------------------

    def schedule_interrupt(self, cycle: int, vector: int) -> None:
        """Deliver an external interrupt at the start of *cycle*."""
        heapq.heappush(self._interrupts, (cycle, vector))

    # -- main loop ----------------------------------------------------------------

    def run(self, until_cycle: int | None = None) -> SimResult:
        """Simulate until the program halts, or until *until_cycle*.

        The simulator is resumable: a call with ``until_cycle`` set returns
        a :class:`SimResult` with ``halted=False`` when the program is still
        running; a subsequent ``run()`` continues from the same
        microarchitectural state (used by the time-sharing OS model to
        exercise context switching, paper section 4.2).
        """
        config = self.config
        state = self.state
        program = self.program
        dec = self._decoded

        if getattr(self, "_failed", False):
            raise SimulationError(
                "cannot resume a simulator after a failed run: "
                "architectural state is no longer consistent")
        if not hasattr(self, "_stats"):
            # First entry: initialize resumable microarchitectural state.
            self._stats = SimStats()
            self._iready = [0] * len(state.int_regs)
            self._fready = [0] * len(state.fp_regs)
            ient = config.int_spec.core if state.int_table is not None else 0
            fent = config.fp_spec.core if state.fp_table is not None else 0
            self._imr_r = [0] * ient
            self._imr_w = [0] * ient
            self._fmr_r = [0] * fent
            self._fmr_w = [0] * fent
            self._pc = program.entry
            self._cycle = 0
            self._halted = False
        stats = self._stats

        iregs = state.int_regs
        fregs = state.fp_regs
        memory = state.memory
        iready = self._iready
        fready = self._fready
        itab = state.int_table
        ftab = state.fp_table
        ient = len(self._imr_r)
        fent = len(self._fmr_r)
        imr_r = self._imr_r
        imr_w = self._imr_w
        fmr_r = self._fmr_r
        fmr_w = self._fmr_w
        connect_lat = config.latency.connect
        width = config.issue_width
        channels = config.mem_channels
        redirect = config.redirect_penalty
        max_cycles = config.max_cycles
        read_reset = config.rc_model.resets_read_map_on_read
        by_category = stats.by_category
        by_origin = stats.by_origin

        obs = self.observer
        psw = state.psw
        map_en = psw.map_enable
        pc = self._pc
        cycle = self._cycle
        halted = self._halted
        pending = self._interrupts
        n_instrs = len(dec)

        # Poison the resume state until this segment completes cleanly; an
        # exception below leaves registers/memory half-updated and the
        # per-segment locals unsaved, so resuming would silently produce
        # garbage (and would diverge from the fast engine, which restarts).
        self._failed = True

        while not halted and (until_cycle is None or cycle < until_cycle):
            if cycle > max_cycles:
                raise CycleBudgetError(
                    f"exceeded {max_cycles} cycles at pc={pc}"
                )
            # External interrupt delivery at cycle boundaries (masked while a
            # trap is in progress).
            if pending and pending[0][0] <= cycle and not state.trap_stack:
                _, vector = heapq.heappop(pending)
                handler = program.trap_handlers.get(vector)
                if handler is None:
                    raise SimulationError(f"no handler for interrupt {vector}")
                state.trap_stack.append((psw.pack(), pc))
                psw.map_enable = False
                map_en = False
                stats.interrupts += 1
                stats.redirect_cycles += redirect
                if obs is not None:
                    obs.on_redirect(cycle, pc, "interrupt", redirect)
                    obs.on_map_reset(cycle, pc, "interrupt")
                pc = handler
                cycle += redirect

            issued = 0
            mem_used = 0
            store_seen = False
            next_cycle = cycle + 1

            while issued < width:
                if pc >= n_instrs:
                    raise SimulationError(f"fell off program end at pc={pc}")
                d = dec[pc]
                kind = d.kind

                # ---- operand resolution through the mapping table ----
                block = 0
                vals = []
                for mode, payload in d.srcs:
                    if mode == _SRC_IMM:
                        vals.append(payload)
                    elif mode == _SRC_INT:
                        if map_en and payload < ient:
                            r = imr_r[payload]
                            if r > cycle:
                                block = r if r > block else block
                            phys = itab.read_map[payload]
                        else:
                            phys = payload
                        r = iready[phys]
                        if r > cycle:
                            block = r if r > block else block
                        vals.append(iregs[phys])
                    else:
                        if map_en and payload < fent:
                            r = fmr_r[payload]
                            if r > cycle:
                                block = r if r > block else block
                            phys = ftab.read_map[payload]
                        else:
                            phys = payload
                        r = fready[phys]
                        if r > cycle:
                            block = r if r > block else block
                        vals.append(fregs[phys])

                dest = d.dest
                if dest is not None:
                    dest_is_int, num = dest
                    if dest_is_int:
                        if map_en and num < ient:
                            r = imr_w[num]
                            if r > cycle:
                                block = r if r > block else block
                            physd = itab.write_map[num]
                        else:
                            physd = num
                        r = iready[physd]
                    else:
                        if map_en and num < fent:
                            r = fmr_w[num]
                            if r > cycle:
                                block = r if r > block else block
                            physd = ftab.write_map[num]
                        else:
                            physd = num
                        r = fready[physd]
                    if r > cycle:
                        block = r if r > block else block

                if block > cycle:
                    # CRAY-1 interlock: in-order issue stalls here.
                    if issued == 0:
                        next_cycle = block
                        if obs is not None:
                            cause, rcls, ridx = self._blocking_source(
                                d, cycle, map_en)
                            obs.on_stall(cycle, block - cycle, pc, cause,
                                         rcls, ridx, d.origin, d.category)
                    break

                # ---- structural hazards ----
                if kind == K_LOAD or kind == K_STORE:
                    if mem_used >= channels:
                        stats.mem_channel_stalls += 1
                        if obs is not None:
                            obs.on_mem_stall(cycle, pc)
                        break
                    if kind == K_LOAD and store_seen:
                        break  # conservative same-cycle store->load ordering
                    mem_used += 1

                # ---- execute ----
                issued += 1
                stats.instructions += 1
                by_category[d.category] += 1
                by_origin[d.origin] += 1
                if self.trace_hook is not None:
                    self.trace_hook(cycle, pc)
                if obs is not None:
                    obs.on_issue(cycle, pc, issued - 1)
                if read_reset and map_en:
                    # Model 5 (READ_RESET): reads are one-shot connections.
                    for mode, payload in d.srcs:
                        if mode == _SRC_INT and payload < ient:
                            itab.after_read(payload)
                        elif mode == _SRC_FP and payload < fent:
                            ftab.after_read(payload)
                advance = True  # advance pc to pc+1 unless control flow

                if kind == K_ALU:
                    value = d.alu(*vals)
                elif kind == K_LI:
                    value = d.imm
                elif kind == K_LOAD:
                    value = memory.get(vals[0] + d.imm,
                                       0 if dest[0] else 0.0)
                elif kind == K_STORE:
                    memory[vals[1] + d.imm] = vals[0]
                    store_seen = True
                    value = None
                elif kind == K_CBR:
                    stats.branches += 1
                    taken = d.brf(*vals)
                    mispredict = taken != d.pred_taken
                    if mispredict:
                        stats.mispredicts += 1
                        if obs is not None:
                            obs.on_redirect(cycle, pc, "mispredict", redirect)
                    pc = d.target if taken else pc + 1
                    advance = False
                    if mispredict:
                        stats.redirect_cycles += redirect
                        next_cycle = cycle + 1 + redirect
                        break
                    if taken:
                        break  # cannot fetch past a taken branch this cycle
                    continue
                elif kind == K_JMP:
                    pc = d.target
                    advance = False
                    break
                elif kind == K_CALL:
                    state.ra_stack.append(pc + 1)
                    state.reset_maps_home()
                    if obs is not None:
                        obs.on_map_reset(cycle, pc, "call")
                    pc = d.target
                    advance = False
                    break
                elif kind == K_RET:
                    if not state.ra_stack:
                        raise SimulationError("ret with empty RA stack")
                    state.reset_maps_home()
                    if obs is not None:
                        obs.on_map_reset(cycle, pc, "ret")
                    pc = state.ra_stack.pop()
                    advance = False
                    break
                elif kind == K_HALT:
                    halted = True
                    advance = False
                    break
                elif kind == K_CONNECT:
                    ready_at = cycle + connect_lat
                    for rclass, which, idx, phys in d.updates:
                        if rclass is RClass.INT:
                            itab.apply(which, idx, phys)
                            if which == "read":
                                imr_r[idx] = ready_at
                            else:
                                imr_w[idx] = ready_at
                        else:
                            ftab.apply(which, idx, phys)
                            if which == "read":
                                fmr_r[idx] = ready_at
                            else:
                                fmr_w[idx] = ready_at
                    if obs is not None:
                        obs.on_connect(cycle, pc, connect_lat == 0, d.updates)
                    pc += 1
                    continue
                elif kind == K_TRAP:
                    handler = program.trap_handlers.get(d.imm)
                    if handler is None:
                        raise SimulationError(f"no handler for trap {d.imm}")
                    state.trap_stack.append((psw.pack(), pc + 1))
                    psw.map_enable = False
                    map_en = False
                    if obs is not None:
                        obs.on_redirect(cycle, pc, "trap", redirect)
                        obs.on_map_reset(cycle, pc, "trap")
                    pc = handler
                    advance = False
                    stats.redirect_cycles += redirect
                    next_cycle = cycle + 1 + redirect
                    break
                elif kind == K_RTE:
                    if not state.trap_stack:
                        raise SimulationError("rte with empty trap stack")
                    packed, ret_pc = state.trap_stack.pop()
                    restored = PSW.unpack(packed)
                    psw.map_enable = restored.map_enable
                    psw.rc_mode = restored.rc_mode
                    map_en = psw.map_enable
                    if obs is not None:
                        obs.on_redirect(cycle, pc, "rte", redirect)
                    pc = ret_pc
                    advance = False
                    stats.redirect_cycles += redirect
                    next_cycle = cycle + 1 + redirect
                    break
                elif kind == K_MFPSW:
                    value = psw.pack()
                elif kind == K_MTPSW:
                    updated = PSW.unpack(vals[0])
                    psw.map_enable = updated.map_enable
                    psw.rc_mode = updated.rc_mode
                    map_en = psw.map_enable
                    value = None
                elif kind == K_MFMAP:
                    rclass, idx, which = d.imm
                    table = itab if rclass is RClass.INT else ftab
                    if table is None:
                        raise SimulationError("mfmap without a mapping table")
                    value = (table.read_map[idx] if which == "read"
                             else table.write_map[idx])
                else:  # K_NOP
                    value = None

                if dest is not None and value is not None:
                    if dest[0]:
                        iregs[physd] = value
                        iready[physd] = cycle + d.latency
                        if map_en and dest[1] < ient:
                            itab.after_write(dest[1])
                    else:
                        fregs[physd] = value
                        fready[physd] = cycle + d.latency
                        if map_en and dest[1] < fent:
                            ftab.after_write(dest[1])
                if advance:
                    pc += 1

            if issued == 0:
                stats.zero_issue_cycles += next_cycle - cycle
            cycle = next_cycle

        stats.cycles = cycle
        self._failed = False
        self._pc = pc
        self._cycle = cycle
        self._halted = halted
        return SimResult(stats=stats, state=state, halted=halted)


def simulate(program: MachineProgram, config: MachineConfig,
             engine: str | None = None) -> SimResult:
    """Convenience wrapper: build a simulator and run it.

    ``engine`` selects the execution engine: ``"fast"`` (the specializing
    engine in :mod:`repro.sim.fastpath`, bit-exact with the reference),
    ``"batched"`` (the gang simulator in :mod:`repro.sim.batched`, run as a
    gang of one), or ``"reference"``.  ``None`` defers to the
    ``REPRO_ENGINE`` environment variable and defaults to the fast engine.
    """
    from repro.sim.config import resolve_engine

    resolved = resolve_engine(engine)
    if resolved == "fast":
        from repro.sim.fastpath import FastSimulator

        return FastSimulator(program, config).run()
    if resolved == "batched":
        from repro.sim.batched import simulate_gang

        outcome = simulate_gang(program, [config])[0]
        if outcome.error is not None:
            raise outcome.error
        return outcome.result
    return Simulator(program, config).run()
