"""Execution statistics collected by the simulator."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


class ReconcileError(AssertionError):
    """Cycle/instruction accounting identities failed to reconcile."""


@dataclass
class SimStats:
    """Counters for one simulation run."""

    cycles: int = 0
    instructions: int = 0
    by_category: Counter = field(default_factory=Counter)
    #: dynamic instruction counts keyed by compiler origin tag
    #: (None = program, "spill", "connect", "callsave", "frame").
    by_origin: Counter = field(default_factory=Counter)
    branches: int = 0
    mispredicts: int = 0
    zero_issue_cycles: int = 0
    #: cycles lost to misprediction/trap/interrupt redirects (the pipeline
    #: refill penalty), so issue + zero-issue + redirect reconciles with
    #: ``cycles``.
    redirect_cycles: int = 0
    mem_channel_stalls: int = 0
    interrupts: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def issue_cycles(self) -> int:
        """Cycles in which at least one instruction issued."""
        return self.cycles - self.zero_issue_cycles - self.redirect_cycles

    def reconcile(self) -> "SimStats":
        """Check the cycle/instruction accounting identities.

        Raises :class:`ReconcileError` when any invariant is violated; used
        by the CPI-stack analyzer and its tests as the independent side of
        the bit-exact attribution check.  Returns ``self`` for chaining.
        """
        checks = []
        if self.by_category:
            checks.append(("per-category instruction counts",
                           sum(self.by_category.values()), self.instructions))
        if self.by_origin:
            checks.append(("per-origin instruction counts",
                           sum(self.by_origin.values()), self.instructions))
        for label, got, want in checks:
            if got != want:
                raise ReconcileError(
                    f"{label} sum to {got}, expected {want}")
        if self.issue_cycles < 0:
            raise ReconcileError(
                f"zero-issue ({self.zero_issue_cycles}) + redirect "
                f"({self.redirect_cycles}) cycles exceed total "
                f"({self.cycles})")
        if self.mispredicts > self.branches:
            raise ReconcileError(
                f"{self.mispredicts} mispredicts out of "
                f"{self.branches} branches")
        return self

    def summary(self) -> str:
        lines = [
            f"cycles             {self.cycles}",
            f"instructions       {self.instructions}",
            f"IPC                {self.ipc:.3f}",
            f"branches           {self.branches}"
            f" ({self.mispredicts} mispredicted)",
            f"issue cycles       {self.issue_cycles}",
            f"zero-issue cycles  {self.zero_issue_cycles}",
            f"redirect cycles    {self.redirect_cycles}",
            f"mem channel stalls {self.mem_channel_stalls}",
            f"interrupts         {self.interrupts}",
        ]
        if self.by_category:
            lines.append("instructions by class:")
            for cat, count in self.by_category.most_common():
                lines.append(f"  {cat.value:<14} {count}")
        overhead = {k: v for k, v in self.by_origin.items() if k is not None}
        if overhead:
            lines.append("overhead instructions:")
            for key in sorted(overhead):
                lines.append(f"  {key:<10} {overhead[key]}")
        return "\n".join(lines)
