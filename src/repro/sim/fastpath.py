"""Specializing fast-path execution engine, bit-exact with the reference
:class:`~repro.sim.core.Simulator`.

Two layers (ROADMAP: "as fast as the hardware allows"):

1. **Decode-time specialization.**  For each static instruction the engine
   generates Python source inlining exactly the operand-resolution branches
   that instruction needs — source count and classes, map-vs-bypass path for
   the configured register files, destination interlock, latency constant —
   and groups the instructions of every basic block into one ``compile()``d
   function.  State is bound through keyword-only default arguments so the
   hot loop runs on local-variable access, with no per-source
   ``for mode, payload in d.srcs`` interpretation, no ``_SRC_*`` dispatch,
   and no repeated attribute loads.

2. **Basic-block issue-bundle caching.**  A self-contained loop block (one
   whose terminating, predicted-taken conditional branch targets its own
   leader) with unmapped operands memoizes its issue schedule keyed on a
   scoreboard-relative signature: the clamped ready-time deltas of every
   register slot the block touches.  A hit replays the recorded
   per-instruction issue offsets and stat deltas — values are still computed
   live, in program order, so runs stay execution-driven — skipping the
   scoreboard polls entirely.  A miss falls back to the specialized
   single-step path, which doubles as the recorder.

The generated code reproduces the reference engine's group accounting
(zero-issue jumps, width exhaustion, memory-channel and same-cycle
store->load structural breaks, misprediction/trap/rte redirects) branch for
branch; ``tests/test_fastpath.py`` asserts equality of cycles, the full
:class:`SimStats`, and the architectural checksum across every benchmark x
RC model x issue width.

The engine transparently delegates to the reference simulator whenever its
per-event guarantees are needed: an attached observer or trace hook, a
scheduled interrupt, a resumable ``run(until_cycle=...)`` segment, or a
program shape the code generator does not support.
"""

from __future__ import annotations

import dataclasses
import re
import weakref

#: One-pass identifier scan used to decide which state names a generated
#: block function needs bound as keyword defaults.
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

from repro.errors import CycleBudgetError, SimulationError
from repro.isa.inline import BRANCH_EXPR as _BR_EXPR
from repro.isa.inline import alu_stmts as _alu_stmts
from repro.isa.registers import RClass
from repro.rc.models import RCModel
from repro.sim.core import (
    K_ALU,
    K_CALL,
    K_CBR,
    K_CONNECT,
    K_HALT,
    K_JMP,
    K_LI,
    K_LOAD,
    K_MFMAP,
    K_MFPSW,
    K_MTPSW,
    K_NOP,
    K_RET,
    K_RTE,
    K_STORE,
    K_TRAP,
    SimResult,
    Simulator,
    _SRC_FP,
    _SRC_IMM,
    _SRC_INT,
)
from repro.sim.stats import SimStats

__all__ = ["FastSimulator", "program_blocks", "program_leaders"]

_CONTROL = frozenset({K_CBR, K_JMP, K_CALL, K_RET, K_HALT, K_TRAP, K_RTE})
_BUNDLE_KINDS = frozenset({K_ALU, K_LI, K_LOAD, K_STORE, K_NOP, K_CBR})
_BUNDLE_MAX_LEN = 48
_BUNDLE_MAX_SLOTS = 32
_BUNDLE_CACHE_CAP = 512

#: Names a block function may bind as keyword-only defaults; the emitted
#: body is scanned so each function binds only what it actually uses.
_BINDABLE = (
    "IREADY", "FREADY", "IREGS", "FREGS", "MEM",
    "IRM", "IWM", "FRM", "FWM",
    "IMR_R", "IMR_W", "FMR_R", "FMR_W",
    "IC", "ST", "RA", "TS", "PSWO", "MAXC", "IHOME", "FHOME",
)

class _Unsupported(Exception):
    """Program shape the generator does not handle; engine falls back."""


# -- program structure (shared with repro.sim.batched) -------------------------

def program_leaders(program, decoded) -> list[int]:
    """Basic-block leader indices: entry, control targets, fall-throughs of
    control instructions, and trap handlers."""
    n = len(decoded)
    leaders = {program.entry}
    for i, d in enumerate(decoded):
        if d.kind in _CONTROL:
            if d.target is not None:
                leaders.add(d.target)
            if i + 1 < n:
                leaders.add(i + 1)
    leaders.update(program.trap_handlers.values())
    return sorted(x for x in leaders if 0 <= x < n)


def program_blocks(program, decoded) -> list[tuple[int, list[int]]]:
    """``(leader, body)`` pairs partitioning the program into basic blocks."""
    n = len(decoded)
    leaders = program_leaders(program, decoded)
    leader_set = set(leaders)
    out = []
    for lead in leaders:
        body = []
        k = lead
        while True:
            body.append(k)
            if decoded[k].kind in _CONTROL:
                break
            if k + 1 >= n or (k + 1) in leader_set:
                break
            k += 1
        out.append((lead, body))
    return out


class _Codegen:
    """Generates one Python module of per-block step functions for a
    (program, config) pair.

    Every block function has the uniform signature
    ``fn(cycle, issued, mem_used, store_seen, map_en)`` and returns the
    7-tuple ``(pc, cycle, issued, mem_used, store_seen, map_en, halted)``;
    the driver loop in :class:`FastSimulator` threads the group state
    between blocks so a correctly-predicted not-taken branch can hand a
    partially-filled issue group to the fall-through block, exactly like
    the reference engine's inner loop.
    """

    def __init__(self, program, config, decoded, generic_maps=False) -> None:
        self.program = program
        self.config = config
        self.dec = decoded
        self.W = config.issue_width
        self.CH = config.mem_channels
        self.RD = config.redirect_penalty
        self.CL = config.latency.connect
        self.maxc = config.max_cycles
        self.model = config.rc_model
        self.read_reset = config.rc_model.resets_read_map_on_read
        #: Generic-maps mode emits the RC-model map maintenance gated by
        #: const flags (MWR/MRU/MRR/MRDR) instead of inlining one model's
        #: lines, so one compiled module serves every model — the batched
        #: engine's class leaders differ only by model and share it.  The
        #: flags bind as keyword defaults like every other const, so the
        #: cost is a LOAD_FAST and branch per mapped writeback.
        self.generic = generic_maps
        self.ient = config.int_spec.core if config.int_spec.has_rc else 0
        self.fent = config.fp_spec.core if config.fp_spec.has_rc else 0
        self.lmax = max(max((d.latency for d in decoded), default=0),
                        self.CL, 1)
        self.consts: dict[str, object] = {}
        self.lines: list[str] = []
        self._block_consts: list[str] = []

    # -- program structure -----------------------------------------------------

    def _blocks(self) -> list[tuple[int, list[int]]]:
        return program_blocks(self.program, self.dec)

    # -- helpers ---------------------------------------------------------------

    def _validate(self, k: int, d) -> None:
        if d.kind in (K_CBR, K_JMP, K_CALL) and d.target is None:
            raise _Unsupported(f"instr {k}: control without target")
        if d.kind in (K_LOAD, K_STORE) and not isinstance(d.imm, int):
            raise _Unsupported(f"instr {k}: non-integer memory offset")
        if d.kind == K_LOAD and d.dest is None:
            raise _Unsupported(f"instr {k}: load without destination")
        if d.kind == K_CBR and d.op.name not in _BR_EXPR:
            raise _Unsupported(f"instr {k}: unknown branch {d.op.name}")
        if d.kind == K_TRAP:
            handler = self.program.trap_handlers.get(d.imm)
            if handler is not None and handler < 0:
                raise _Unsupported(f"instr {k}: negative trap handler")
        if d.kind == K_MFMAP:
            rclass = d.imm[0]
            if not self._mapped(rclass is RClass.INT):
                raise _Unsupported(f"instr {k}: mfmap without a mapping table")

    def _const(self, name: str, value) -> str:
        self.consts[name] = value
        self._block_consts.append(name)
        return name

    def _imm_expr(self, k: int, j, value) -> str:
        if type(value) is int:
            return f"({value!r})"
        return self._const(f"C{k}_{j}", value)

    def _mapped(self, is_int: bool) -> bool:
        return bool(self.ient if is_int else self.fent)

    # -- operand resolution ----------------------------------------------------

    def _emit_resolution(self, w, ind, k: int, d):
        """Emit ready-time checks accumulating the interlock bound into local
        ``b``; returns (value expressions, dest index expression or None).

        Mirrors the reference resolution walk: map-ready check and map
        translation under ``map_en`` (the decoder guarantees operand indices
        fit the table, so the reference's ``payload < ient`` test is
        statically true whenever a table exists), then the register-file
        ready check on the physical index.
        """
        vals = []
        for j, (mode, payload) in enumerate(d.srcs):
            if mode == _SRC_IMM:
                vals.append(self._imm_expr(k, j, payload))
                continue
            is_int = mode == _SRC_INT
            regs = "IREGS" if is_int else "FREGS"
            ready = "IREADY" if is_int else "FREADY"
            if self._mapped(is_int):
                mr = "IMR_R" if is_int else "FMR_R"
                rm = "IRM" if is_int else "FRM"
                w(ind + "if map_en:")
                w(ind + f"    r = {mr}[{payload}]")
                w(ind + "    if r > cycle and r > b: b = r")
                w(ind + f"    s{j} = {rm}[{payload}]")
                w(ind + "else:")
                w(ind + f"    s{j} = {payload}")
                w(ind + f"r = {ready}[s{j}]")
                w(ind + "if r > cycle and r > b: b = r")
                vals.append(f"{regs}[s{j}]")
            else:
                w(ind + f"r = {ready}[{payload}]")
                w(ind + "if r > cycle and r > b: b = r")
                vals.append(f"{regs}[{payload}]")
        dest_expr = None
        if d.dest is not None:
            dest_is_int, nm = d.dest
            ready = "IREADY" if dest_is_int else "FREADY"
            if self._mapped(dest_is_int):
                mw = "IMR_W" if dest_is_int else "FMR_W"
                wm = "IWM" if dest_is_int else "FWM"
                w(ind + "if map_en:")
                w(ind + f"    r = {mw}[{nm}]")
                w(ind + "    if r > cycle and r > b: b = r")
                w(ind + f"    dph = {wm}[{nm}]")
                w(ind + "else:")
                w(ind + f"    dph = {nm}")
                w(ind + f"r = {ready}[dph]")
                w(ind + "if r > cycle and r > b: b = r")
                dest_expr = "dph"
            else:
                w(ind + f"r = {ready}[{nm}]")
                w(ind + "if r > cycle and r > b: b = r")
                dest_expr = str(nm)
        return vals, dest_expr

    def _static_vals(self, k: int, d) -> list[str]:
        """Value expressions with direct physical indices (no mapping)."""
        vals = []
        for j, (mode, payload) in enumerate(d.srcs):
            if mode == _SRC_IMM:
                vals.append(self._imm_expr(k, j, payload))
            elif mode == _SRC_INT:
                vals.append(f"IREGS[{payload}]")
            else:
                vals.append(f"FREGS[{payload}]")
        return vals

    # -- execution -------------------------------------------------------------

    def _emit_value(self, w, ind, k: int, d, vals: list[str]) -> None:
        """Emit statements computing local ``v`` for a value-producing kind."""
        kind = d.kind
        if kind == K_ALU:
            stmts = _alu_stmts(d.op.name, vals)
            if stmts is None:
                fn = self._const(f"A{k}", d.alu)
                w(ind + f"v = {fn}({', '.join(vals)})")
            else:
                for s in stmts:
                    w(ind + s)
        elif kind == K_LI:
            w(ind + f"v = {self._imm_expr(k, 'i', d.imm)}")
        elif kind == K_LOAD:
            default = "0" if d.dest[0] else "0.0"
            w(ind + f"v = MEM.get({vals[0]} + ({d.imm!r}), {default})")
        elif kind == K_MFPSW:
            w(ind + "v = PSWO.pack()")
        elif kind == K_MFMAP:
            rclass, idx, which = d.imm
            is_int = rclass is RClass.INT
            tab = (("IRM" if which == "read" else "IWM") if is_int
                   else ("FRM" if which == "read" else "FWM"))
            w(ind + f"v = {tab}[{idx}]")

    def _emit_writeback(self, w, ind, d, dest_expr: str) -> None:
        dest_is_int, nm = d.dest
        regs = "IREGS" if dest_is_int else "FREGS"
        ready = "IREADY" if dest_is_int else "FREADY"
        w(ind + f"{regs}[{dest_expr}] = v")
        w(ind + f"{ready}[{dest_expr}] = cycle + {d.latency}")
        if not self._mapped(dest_is_int):
            return
        rm = "IRM" if dest_is_int else "FRM"
        wm = "IWM" if dest_is_int else "FWM"
        if self.generic:
            self._const("MWR", self.model is not RCModel.NO_RESET)
            self._const("MRU", self.model is RCModel.WRITE_RESET_READ_UPDATE)
            self._const("MRR", self.model is RCModel.READ_WRITE_RESET)
            w(ind + "if map_en and MWR:")
            w(ind + f"    if MRU: {rm}[{nm}] = {wm}[{nm}]")
            w(ind + f"    elif MRR: {rm}[{nm}] = {nm}")
            w(ind + f"    {wm}[{nm}] = {nm}")
        elif self.model is not RCModel.NO_RESET:
            if self.model in (RCModel.WRITE_RESET, RCModel.READ_RESET):
                body = [f"{wm}[{nm}] = {nm}"]
            elif self.model is RCModel.WRITE_RESET_READ_UPDATE:
                body = [f"{rm}[{nm}] = {wm}[{nm}]", f"{wm}[{nm}] = {nm}"]
            else:  # READ_WRITE_RESET
                body = [f"{rm}[{nm}] = {nm}", f"{wm}[{nm}] = {nm}"]
            w(ind + "if map_en:")
            for line in body:
                w(ind + "    " + line)

    def _emit_read_resets(self, w, ind, d) -> None:
        """Model 5 (READ_RESET): reads are one-shot connections."""
        if not (self.read_reset or self.generic):
            return
        resets = []
        for mode, payload in d.srcs:
            if mode == _SRC_INT and self.ient:
                resets.append(f"IRM[{payload}] = {payload}")
            elif mode == _SRC_FP and self.fent:
                resets.append(f"FRM[{payload}] = {payload}")
        if resets:
            if self.generic:
                self._const("MRDR", self.read_reset)
                w(ind + "if map_en and MRDR:")
            else:
                w(ind + "if map_en:")
            for line in resets:
                w(ind + "    " + line)

    # -- group bookkeeping -----------------------------------------------------

    def _emit_goto(self, w, ind, target: int, loop_leader) -> None:
        """Control transfer with a clean (empty) next group."""
        if loop_leader is not None and target == loop_leader:
            w(ind + f"if cycle > MAXC: _mxe({target})")
            if self.W > 1:
                w(ind + "issued = 0; mem_used = 0; store_seen = 0")
            w(ind + "continue")
        else:
            w(ind + f"return ({target}, cycle, 0, 0, False, map_en, False)")

    def _emit_epilogue(self, w, ind, k: int, is_last: bool) -> None:
        """Group advance after a fall-through issue (width exhaustion)."""
        if self.W > 1:
            w(ind + f"if issued == {self.W}:")
            w(ind + "    cycle += 1")
            if is_last:
                w(ind + f"    return ({k + 1}, cycle, 0, 0, False, map_en,"
                        " False)")
                w(ind + f"return ({k + 1}, cycle, issued, mem_used,"
                        " store_seen, map_en, False)")
            else:
                w(ind + f"    if cycle > MAXC: _mxe({k + 1})")
                w(ind + "    issued = 0; mem_used = 0; store_seen = 0")
        else:
            w(ind + "cycle += 1")
            if is_last:
                w(ind + f"return ({k + 1}, cycle, 0, 0, False, map_en,"
                        " False)")
            else:
                w(ind + f"if cycle > MAXC: _mxe({k + 1})")

    # -- per-instruction emission ----------------------------------------------

    def _emit_instr(self, w, ind, k: int, d, loop_leader, record: bool,
                    is_last: bool) -> None:
        W = self.W
        kind = d.kind
        self._validate(k, d)
        has_res = d.dest is not None or any(
            m != _SRC_IMM for m, _ in d.srcs)
        is_mem = kind in (K_LOAD, K_STORE)
        mem_can_stall = is_mem and self.CH < W
        las_check = kind == K_LOAD and W > 1

        dest_expr = None
        if has_res and W > 1:
            w(ind + "while 1:")
            i2 = ind + "    "
            w(i2 + "b = 0")
            vals, dest_expr = self._emit_resolution(w, i2, k, d)
            w(i2 + "if b:")
            w(i2 + "    if issued:")
            w(i2 + "        cycle += 1")
            w(i2 + f"        if cycle > MAXC: _mxe({k})")
            w(i2 + "        issued = 0; mem_used = 0; store_seen = 0")
            w(i2 + "        continue")
            w(i2 + "    ST[0] += b - cycle")
            w(i2 + "    cycle = b")
            w(i2 + f"    if cycle > MAXC: _mxe({k})")
            if mem_can_stall:
                w(i2 + f"if mem_used >= {self.CH}:")
                w(i2 + "    ST[2] += 1")
                w(i2 + "    cycle += 1")
                w(i2 + f"    if cycle > MAXC: _mxe({k})")
                w(i2 + "    issued = 0; mem_used = 0; store_seen = 0")
            if las_check:
                w(i2 + "if store_seen:")
                w(i2 + "    cycle += 1")
                w(i2 + f"    if cycle > MAXC: _mxe({k})")
                w(i2 + "    issued = 0; mem_used = 0; store_seen = 0")
            w(i2 + "break")
        elif has_res:  # W == 1: groups hold one instruction, stalls jump once
            w(ind + "b = 0")
            vals, dest_expr = self._emit_resolution(w, ind, k, d)
            w(ind + "if b:")
            w(ind + "    ST[0] += b - cycle")
            w(ind + "    cycle = b")
            w(ind + f"    if cycle > MAXC: _mxe({k})")
        else:
            vals = self._static_vals(k, d)
            if mem_can_stall:
                w(ind + f"if mem_used >= {self.CH}:")
                w(ind + "    ST[2] += 1")
                w(ind + "    cycle += 1")
                w(ind + f"    if cycle > MAXC: _mxe({k})")
                w(ind + "    issued = 0; mem_used = 0; store_seen = 0")
            if las_check:
                w(ind + "if store_seen:")
                w(ind + "    cycle += 1")
                w(ind + f"    if cycle > MAXC: _mxe({k})")
                w(ind + "    issued = 0; mem_used = 0; store_seen = 0")

        if is_mem and W > 1:
            w(ind + "mem_used += 1")
        if W > 1:
            w(ind + "issued += 1")
        w(ind + f"IC[{k}] += 1")
        if record:
            w(ind + "if _rec is not None:")
            w(ind + "    _rec.append(cycle - _c0)")
        self._emit_read_resets(w, ind, d)

        if kind in (K_ALU, K_LI, K_LOAD, K_MFPSW, K_MFMAP):
            self._emit_value(w, ind, k, d, vals)
            if d.dest is not None:
                self._emit_writeback(w, ind, d, dest_expr)
            self._emit_epilogue(w, ind, k, is_last)
        elif kind == K_STORE:
            w(ind + f"MEM[{vals[1]} + ({d.imm!r})] = {vals[0]}")
            if W > 1:
                w(ind + "store_seen = 1")
            self._emit_epilogue(w, ind, k, is_last)
        elif kind == K_NOP:
            self._emit_epilogue(w, ind, k, is_last)
        elif kind == K_MTPSW:
            w(ind + f"_p = {vals[0]}")
            w(ind + "map_en = (_p & 1) != 0")
            w(ind + "PSWO.map_enable = map_en")
            w(ind + "PSWO.rc_mode = (_p & 2) != 0")
            self._emit_epilogue(w, ind, k, is_last)
        elif kind == K_CONNECT:
            self._emit_connect(w, ind, d)
            self._emit_epilogue(w, ind, k, is_last)
        elif kind == K_CBR:
            self._emit_cbr(w, ind, k, d, vals, loop_leader, record)
        elif kind == K_JMP:
            w(ind + "cycle += 1")
            self._emit_goto(w, ind, d.target, loop_leader)
        elif kind == K_CALL:
            w(ind + f"RA.append({k + 1})")
            self._emit_map_home(w, ind)
            w(ind + "cycle += 1")
            self._emit_goto(w, ind, d.target, loop_leader)
        elif kind == K_RET:
            w(ind + "if not RA:")
            w(ind + "    raise SE('ret with empty RA stack')")
            self._emit_map_home(w, ind)
            w(ind + "cycle += 1")
            w(ind + "return (RA.pop(), cycle, 0, 0, False, map_en, False)")
        elif kind == K_HALT:
            w(ind + "cycle += 1")
            w(ind + f"return ({k}, cycle, 0, 0, False, map_en, True)")
        elif kind == K_TRAP:
            handler = self.program.trap_handlers.get(d.imm)
            if handler is None:
                w(ind + f"raise SE('no handler for trap {d.imm}')")
            else:
                w(ind + f"TS.append((PSWO.pack(), {k + 1}))")
                w(ind + "PSWO.map_enable = False")
                w(ind + "map_en = False")
                w(ind + f"ST[3] += {self.RD}")
                w(ind + f"cycle += {1 + self.RD}")
                w(ind + f"return ({handler}, cycle, 0, 0, False, False,"
                        " False)")
        elif kind == K_RTE:
            w(ind + "if not TS:")
            w(ind + "    raise SE('rte with empty trap stack')")
            w(ind + "_p, _rpc = TS.pop()")
            w(ind + "map_en = (_p & 1) != 0")
            w(ind + "PSWO.map_enable = map_en")
            w(ind + "PSWO.rc_mode = (_p & 2) != 0")
            w(ind + f"ST[3] += {self.RD}")
            w(ind + f"cycle += {1 + self.RD}")
            w(ind + "return (_rpc, cycle, 0, 0, False, map_en, False)")
        else:
            raise _Unsupported(f"instr {k}: unhandled kind {kind}")

    def _emit_connect(self, w, ind, d) -> None:
        w(ind + ("_ra = cycle" if self.CL == 0
                 else f"_ra = cycle + {self.CL}"))
        for rclass, which, idx, phys in d.updates:
            is_int = rclass is RClass.INT
            tab = (("IRM" if which == "read" else "IWM") if is_int
                   else ("FRM" if which == "read" else "FWM"))
            mr = (("IMR_R" if which == "read" else "IMR_W") if is_int
                  else ("FMR_R" if which == "read" else "FMR_W"))
            w(ind + f"{tab}[{idx}] = {phys}")
            w(ind + f"{mr}[{idx}] = _ra")

    def _emit_map_home(self, w, ind) -> None:
        if self.ient:
            self._const("IHOME", range(self.ient))
            w(ind + "IRM[:] = IHOME")
            w(ind + "IWM[:] = IHOME")
        if self.fent:
            self._const("FHOME", range(self.fent))
            w(ind + "FRM[:] = FHOME")
            w(ind + "FWM[:] = FHOME")

    def _emit_cbr(self, w, ind, k: int, d, vals, loop_leader,
                  record: bool) -> None:
        cond = _BR_EXPR[d.op.name].format(
            a=vals[0], b=vals[1] if len(vals) > 1 else "")
        i2 = ind + "    "
        w(ind + f"if {cond}:")
        if d.pred_taken:
            # Correctly predicted taken: the group cannot fetch past it.
            if record:
                w(i2 + "if _rec is not None:")
                w(i2 + f"    if len(BC) < {_BUNDLE_CACHE_CAP}:")
                w(i2 + "        BC[_sig] = (tuple(_rec), ST[0] - _z0,"
                       " ST[2] - _m0)")
                w(i2 + "    _rec = None")
            w(i2 + "cycle += 1")
            self._emit_goto(w, i2, d.target, loop_leader)
            # Not taken against a taken prediction: mispredict redirect.
            w(ind + "ST[1] += 1")
            w(ind + f"ST[3] += {self.RD}")
            w(ind + f"cycle += {1 + self.RD}")
            w(ind + f"return ({k + 1}, cycle, 0, 0, False, map_en, False)")
        else:
            # Taken against a not-taken prediction: mispredict redirect.
            w(i2 + "ST[1] += 1")
            w(i2 + f"ST[3] += {self.RD}")
            w(i2 + f"cycle += {1 + self.RD}")
            self._emit_goto(w, i2, d.target, loop_leader)
            # Correctly predicted not taken: the group keeps filling across
            # the fall-through edge.
            self._emit_epilogue(w, ind, k, True)

    # -- issue-bundle caching --------------------------------------------------

    def _bundle_plan(self, lead: int, body: list[int]):
        """Static plan for memoizing this self-loop block's issue schedule,
        or ``None`` when the block does not qualify.

        Qualification: predicted-taken conditional-branch terminator
        targeting the leader, simple kinds only, every register operand
        unmapped (its file has no RC table, so resolution never consults
        ``map_en`` or map-ready times), a bounded register footprint, and a
        max-cycles gate far enough out that skipping the per-group limit
        checks cannot change behavior.
        """
        dec = self.dec
        term = dec[body[-1]]
        if term.kind != K_CBR or not term.pred_taken or term.target != lead:
            return None
        if not 2 <= len(body) <= _BUNDLE_MAX_LEN:
            return None
        gate = self.maxc - (len(body) * (self.lmax + 3) + self.RD + 4)
        if gate <= 0:
            return None
        slots: list[tuple[bool, int]] = []
        seen = set()
        for k in body:
            d = dec[k]
            if d.kind not in _BUNDLE_KINDS:
                return None
            operands = [(m == _SRC_INT, p) for m, p in d.srcs
                        if m != _SRC_IMM]
            if d.dest is not None:
                operands.append(d.dest)
            for is_int, p in operands:
                if self._mapped(is_int):
                    return None
                key = (is_int, p)
                if key not in seen:
                    seen.add(key)
                    slots.append(key)
        if len(slots) > _BUNDLE_MAX_SLOTS:
            return None
        return {"slots": slots, "gate": gate}

    def _emit_bundle(self, w, ind, lead: int, body: list[int], plan) -> None:
        """Loop-top pre-header: signature probe, replay on hit, recorder
        arming on miss."""
        i2 = ind + "    "
        i3 = i2 + "    "
        w(ind + f"if issued == 0 and cycle < {plan['gate']}:")
        parts = []
        for j, (is_int, p) in enumerate(plan["slots"]):
            ready = "IREADY" if is_int else "FREADY"
            parts.append(
                f"x{j} if (x{j} := {ready}[{p}] - cycle) > 0 else 0")
        if parts:
            tail = "," if len(parts) == 1 else ""
            w(i2 + f"_sig = ({', '.join(parts)}{tail})")
        else:
            w(i2 + "_sig = ()")
        w(i2 + "_e = BC.get(_sig)")
        w(i2 + "if _e is None:")
        w(i3 + "_rec = []")
        w(i3 + "_c0 = cycle")
        w(i3 + "_z0 = ST[0]")
        w(i3 + "_m0 = ST[2]")
        w(i2 + "else:")
        w(i3 + "_rel = _e[0]")
        for i, k in enumerate(body[:-1]):
            d = self.dec[k]
            w(i3 + f"IC[{k}] += 1")
            vals = self._static_vals(k, d)
            kind = d.kind
            if kind in (K_ALU, K_LI, K_LOAD):
                self._emit_value(w, i3, k, d, vals)
                if d.dest is not None:
                    is_int, nm = d.dest
                    regs = "IREGS" if is_int else "FREGS"
                    ready = "IREADY" if is_int else "FREADY"
                    w(i3 + f"{regs}[{nm}] = v")
                    w(i3 + f"{ready}[{nm}] = cycle + _rel[{i}] +"
                           f" {d.latency}")
            elif kind == K_STORE:
                w(i3 + f"MEM[{vals[1]} + ({d.imm!r})] = {vals[0]}")
            # K_NOP: nothing to execute.
        w(i3 + "ST[0] += _e[1]")
        w(i3 + "ST[2] += _e[2]")
        termk = body[-1]
        td = self.dec[termk]
        tvals = self._static_vals(termk, td)
        cond = _BR_EXPR[td.op.name].format(
            a=tvals[0], b=tvals[1] if len(tvals) > 1 else "")
        B = len(body) - 1
        w(i3 + f"IC[{termk}] += 1")
        w(i3 + f"if {cond}:")
        w(i3 + f"    cycle += _rel[{B}] + 1")
        w(i3 + f"    if cycle > MAXC: _mxe({lead})")
        w(i3 + "    continue")
        w(i3 + "ST[1] += 1")
        w(i3 + f"ST[3] += {self.RD}")
        w(i3 + f"cycle += _rel[{B}] + {1 + self.RD}")
        w(i3 + f"return ({termk + 1}, cycle, 0, 0, False, map_en, False)")
        w(ind + "else:")
        w(ind + "    _rec = None")

    # -- module assembly -------------------------------------------------------

    def _emit_block(self, lead: int, body: list[int]) -> None:
        self._block_consts = []
        dec = self.dec
        term = dec[body[-1]]
        self_loop = term.kind in (K_CBR, K_JMP) and term.target == lead
        plan = self._bundle_plan(lead, body) if self_loop else None
        buf: list[str] = []
        w = buf.append
        base = "    "
        if self_loop:
            if plan:
                w(base + "_rec = None")
            w(base + "while 1:")
            ind = base + "    "
        else:
            ind = base
        if plan:
            self._emit_bundle(w, ind, lead, body, plan)
        loop_leader = lead if self_loop else None
        last = len(body) - 1
        for i, k in enumerate(body):
            self._emit_instr(w, ind, k, dec[k], loop_leader,
                             plan is not None, i == last)
        text = "\n".join(buf)
        binds = []
        if plan:
            self.lines.append(f"BC{lead} = {{}}")
            binds.append(f"BC=BC{lead}")
        names = dict.fromkeys(list(_BINDABLE) + self._block_consts)
        used = set(_IDENT_RE.findall(text))
        for name in names:
            if name in used:
                binds.append(f"{name}={name}")
        head = f"def _b{lead}(cycle, issued, mem_used, store_seen, map_en"
        if binds:
            head += ", *, " + ", ".join(binds)
        head += "):"
        self.lines.append(head)
        self.lines.append(text)
        self.lines.append("")

    def generate(self) -> tuple[str, dict[str, object]]:
        w = self.lines.append
        w("def _mxe(pc):")
        w(f"    raise CBE('exceeded {self.maxc} cycles at pc=%d' % pc)")
        w("")
        blocks = self._blocks()
        for lead, body in blocks:
            self._emit_block(lead, body)
        w(f"_FUNCS = [None] * {len(self.dec)}")
        for lead, _body in blocks:
            w(f"_FUNCS[{lead}] = _b{lead}")
        return "\n".join(self.lines) + "\n", self.consts


# -- compiled-code cache -------------------------------------------------------

#: id(program) -> (weakref to the program, {config key -> (code, consts) or
#: None}).  Keyed by identity because :class:`MachineProgram` is an
#: eq-bearing (hence unhashable) mutable dataclass, and instances are pickled
#: into the experiment disk cache, so code objects must never be attached to
#: them.
_code_cache: dict[int, tuple[object, dict]] = {}


def _compiled(program, config, decoded):
    """Compiled step-function module for (program, config), or ``None`` when
    the program shape is unsupported.  Cached per program identity."""
    key = id(program)
    entry = _code_cache.get(key)
    if entry is None or entry[0]() is not program:
        try:
            ref = weakref.ref(
                program, lambda _r, _k=key: _code_cache.pop(_k, None))
        except TypeError:  # pragma: no cover - programs are weakref-able
            return _generate(program, config, decoded)
        entry = (ref, {})
        _code_cache[key] = entry
    per_config = entry[1]
    ckey = repr(config)
    if ckey not in per_config:
        per_config[ckey] = _generate(program, config, decoded)
    return per_config[ckey]


def _generate(program, config, decoded):
    try:
        source, consts = _Codegen(program, config, decoded).generate()
    except _Unsupported:
        return None
    code = compile(source, f"<fastpath:{program.name}>", "exec")
    return code, consts


def _model_flags(model) -> dict[str, bool]:
    """Const flags selecting one RC model inside a generic-maps module."""
    return {
        "MWR": model is not RCModel.NO_RESET,
        "MRU": model is RCModel.WRITE_RESET_READ_UPDATE,
        "MRR": model is RCModel.READ_WRITE_RESET,
        "MRDR": model.resets_read_map_on_read,
    }


def _compiled_generic(program, config, decoded):
    """Like :func:`_compiled`, but the module is generated in generic-maps
    mode and cached under the config *minus its RC model*: one ``compile()``
    serves every model, with the model selected per caller by patching the
    MWR/MRU/MRR/MRDR consts.  Used by the batched engine, whose gang
    leaders differ only by model."""
    key = id(program)
    entry = _code_cache.get(key)
    if entry is None or entry[0]() is not program:
        try:
            ref = weakref.ref(
                program, lambda _r, _k=key: _code_cache.pop(_k, None))
        except TypeError:  # pragma: no cover - programs are weakref-able
            entry = None
        else:
            entry = (ref, {})
            _code_cache[key] = entry
    base = dataclasses.replace(config, rc_model=RCModel.NO_RESET)
    if entry is None:  # pragma: no cover - unreachable for real programs
        cached = _generate_generic(program, base, decoded)
    else:
        per_config = entry[1]
        ckey = "generic:" + repr(base)
        if ckey not in per_config:
            per_config[ckey] = _generate_generic(program, base, decoded)
        cached = per_config[ckey]
    if cached is None:
        return None
    code, consts = cached
    return code, {**consts, **_model_flags(config.rc_model)}


def _generate_generic(program, base_config, decoded):
    try:
        source, consts = _Codegen(program, base_config, decoded,
                                  generic_maps=True).generate()
    except _Unsupported:
        return None
    code = compile(source, f"<fastpath-generic:{program.name}>", "exec")
    return code, consts


class FastSimulator:
    """Drop-in replacement for :class:`Simulator` built on generated code.

    Construction decodes through an embedded reference simulator (sharing
    its validation and :class:`MachineState`), so architectural state,
    ``schedule_interrupt``, observers and trace hooks behave identically.
    ``run()`` executes the specialized engine when it can guarantee bit
    exactness and silently delegates to the reference engine otherwise;
    ``ran_fastpath`` reports which engine produced the last result.
    """

    def __init__(self, program, config, trace_hook=None,
                 observer=None, *, decoded=None,
                 generic_maps=False) -> None:
        self._ref = Simulator(program, config, trace_hook=trace_hook,
                              observer=observer, decoded=decoded)
        self.program = program
        self.config = config
        self.ran_fastpath = False
        lookup = _compiled_generic if generic_maps else _compiled
        self._compiled_entry = lookup(program, config, self._ref._decoded)

    # -- reference-state delegation -------------------------------------------

    @property
    def state(self):
        return self._ref.state

    @property
    def trace_hook(self):
        return self._ref.trace_hook

    @trace_hook.setter
    def trace_hook(self, hook) -> None:
        self._ref.trace_hook = hook

    @property
    def observer(self):
        return self._ref.observer

    @observer.setter
    def observer(self, obs) -> None:
        self._ref.observer = obs

    def schedule_interrupt(self, cycle: int, vector: int) -> None:
        self._ref.schedule_interrupt(cycle, vector)

    # -- execution ------------------------------------------------------------

    def run(self, until_cycle: int | None = None) -> SimResult:
        ref = self._ref
        if (until_cycle is not None
                or ref.observer is not None
                or ref.trace_hook is not None
                or ref._interrupts
                or hasattr(ref, "_stats")
                or getattr(ref, "_failed", False)
                or self._compiled_entry is None):
            # Per-event guarantees (observation, interrupts, resumability)
            # or an unsupported program shape: reference engine.  A poisoned
            # reference (failed earlier run) also lands here so both engines
            # refuse to resume with the same diagnostic.
            self.ran_fastpath = False
            return ref.run(until_cycle)
        self.ran_fastpath = True
        try:
            return self._run_fast()
        except BaseException:
            # Architectural state is half-updated and no resume state was
            # published; mark the embedded reference so a later run() raises
            # instead of silently restarting from the entry point.
            ref._failed = True
            raise

    def _run_fast(self, trace=None) -> SimResult:
        ref = self._ref
        state = ref.state
        config = self.config
        code, consts = self._compiled_entry
        n = len(ref._decoded)
        itab = state.int_table
        ftab = state.fp_table
        iready = [0] * len(state.int_regs)
        fready = [0] * len(state.fp_regs)
        ient = config.int_spec.core if itab is not None else 0
        fent = config.fp_spec.core if ftab is not None else 0
        imr_r = [0] * ient
        imr_w = [0] * ient
        fmr_r = [0] * fent
        fmr_w = [0] * fent
        counts = [0] * n
        # [zero-issue cycles, mispredicts, mem-channel stalls, redirects]
        st = [0, 0, 0, 0]
        ns = {
            "SE": SimulationError,
            "CBE": CycleBudgetError,
            "MAXC": config.max_cycles,
            "IREADY": iready, "FREADY": fready,
            "IREGS": state.int_regs, "FREGS": state.fp_regs,
            "MEM": state.memory,
            "IRM": itab.read_map if itab is not None else None,
            "IWM": itab.write_map if itab is not None else None,
            "FRM": ftab.read_map if ftab is not None else None,
            "FWM": ftab.write_map if ftab is not None else None,
            "IMR_R": imr_r, "IMR_W": imr_w,
            "FMR_R": fmr_r, "FMR_W": fmr_w,
            "IC": counts, "ST": st,
            "RA": state.ra_stack, "TS": state.trap_stack,
            "PSWO": state.psw,
            "IHOME": None, "FHOME": None,
        }
        ns.update(consts)
        exec(code, ns)
        funcs = ns["_FUNCS"]

        pc = self.program.entry
        cycle = 0
        issued = 0
        mem_used = 0
        store_seen = False
        map_en = state.psw.map_enable
        maxc = config.max_cycles
        if trace is None:
            while True:
                if cycle > maxc:
                    raise CycleBudgetError(
                        f"exceeded {maxc} cycles at pc={pc}")
                if pc >= n:
                    raise SimulationError(f"fell off program end at pc={pc}")
                (pc, cycle, issued, mem_used, store_seen, map_en,
                 halted) = funcs[pc](cycle, issued, mem_used, store_seen,
                                     map_en)
                if halted:
                    break
        else:
            # Gang-leader mode (repro.sim.batched): record one (block leader,
            # iteration count) entry per driver dispatch.  Self-loop blocks
            # iterate internally, so the count is recovered from the leader
            # instruction's issue-count delta across the call.
            tp, tn = trace
            while True:
                if cycle > maxc:
                    raise CycleBudgetError(
                        f"exceeded {maxc} cycles at pc={pc}")
                if pc >= n:
                    raise SimulationError(f"fell off program end at pc={pc}")
                opc = pc
                before = counts[opc]
                (pc, cycle, issued, mem_used, store_seen, map_en,
                 halted) = funcs[opc](cycle, issued, mem_used, store_seen,
                                      map_en)
                tp.append(opc)
                tn.append(counts[opc] - before)
                if halted:
                    break

        dec = ref._decoded
        stats = SimStats()
        by_category = stats.by_category
        by_origin = stats.by_origin
        instructions = 0
        branches = 0
        for k, cnt in enumerate(counts):
            if cnt:
                d = dec[k]
                instructions += cnt
                by_category[d.category] += cnt
                by_origin[d.origin] += cnt
                if d.kind == K_CBR:
                    branches += cnt
        stats.instructions = instructions
        stats.branches = branches
        stats.zero_issue_cycles = st[0]
        stats.mispredicts = st[1]
        stats.mem_channel_stalls = st[2]
        stats.redirect_cycles = st[3]
        stats.cycles = cycle

        # Publish the final microarchitectural state into the embedded
        # reference simulator so a subsequent run() resumes (and returns)
        # exactly as the reference engine would after halting.
        ref._stats = stats
        ref._iready = iready
        ref._fready = fready
        ref._imr_r = imr_r
        ref._imr_w = imr_w
        ref._fmr_r = fmr_r
        ref._fmr_w = fmr_w
        ref._pc = pc
        ref._cycle = cycle
        ref._halted = True
        return SimResult(stats=stats, state=state, halted=True)
