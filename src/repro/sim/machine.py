"""Architectural state of the simulated machine."""

from __future__ import annotations

from repro.rc.context import ProcessContext, restore_context, save_context
from repro.rc.mapping_table import MappingTable
from repro.rc.psw import PSW
from repro.sim.config import MachineConfig


class MachineState:
    """Register files, memory, mapping tables, PSW, and linkage stacks."""

    __slots__ = (
        "config", "int_regs", "fp_regs", "memory", "psw",
        "int_table", "fp_table", "ra_stack", "trap_stack",
    )

    def __init__(self, config: MachineConfig,
                 initial_memory: dict[int, int | float] | None = None,
                 rc_process: bool | None = None) -> None:
        self.config = config
        self.int_regs: list[int] = [0] * config.int_spec.total
        self.fp_regs: list[float] = [0.0] * config.fp_spec.total
        self.memory: dict[int, int | float] = dict(initial_memory or {})
        if rc_process is None:
            rc_process = config.has_rc
        self.psw = PSW(map_enable=True, rc_mode=rc_process)
        self.int_table = (
            MappingTable(config.int_spec.core, config.int_spec.total,
                         config.rc_model)
            if config.int_spec.has_rc else None
        )
        self.fp_table = (
            MappingTable(config.fp_spec.core, config.fp_spec.total,
                         config.rc_model)
            if config.fp_spec.has_rc else None
        )
        #: Hardware return-address stack (stands in for a link register; see
        #: DESIGN.md substitutions).
        self.ra_stack: list[int] = []
        #: Trap shadow: (saved PSW, return PC) pairs.
        self.trap_stack: list[tuple[int, int]] = []

    # -- context switching (paper section 4.2) --------------------------------

    def save_process_context(self) -> ProcessContext:
        """Save this process's context in the format chosen by PSW.rc_mode."""
        return save_context(self.psw, self.int_regs, self.fp_regs,
                            self.int_table, self.fp_table)

    def restore_process_context(self, ctx: ProcessContext) -> None:
        restore_context(ctx, self.psw, self.int_regs, self.fp_regs,
                        self.int_table, self.fp_table)

    # -- subroutine linkage map reset (paper section 4.1) ----------------------

    def reset_maps_home(self) -> None:
        """The ``jsr``/``rts`` whole-map reset to home locations."""
        if self.int_table is not None:
            self.int_table.reset_home()
        if self.fp_table is not None:
            self.fp_table.reset_home()
