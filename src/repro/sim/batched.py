"""Batched lockstep gang simulator: N machine configs in one pass.

Every figure in the paper sweeps the *same compiled program* over many
machine configurations (RC models x issue widths x memory channels x
extra-decode).  The fast path (:mod:`repro.sim.fastpath`) specializes per
instruction but still pays decode, codegen, and a full value-computing run
per config.  This module exploits the key structural fact of the machine
model:

**Architectural state is timing-invariant.**  Register values, memory
contents, branch outcomes, and mapping-table contents depend only on
``(program, rc_model, int_spec, fp_spec)`` — the issue width, memory
channels, latencies, extra decode stage, and cycle budget shift *when*
things happen, never *what* happens.  (Values are computed in program
order at issue; map updates are value-independent; ``tests/test_batched.py``
and the ``batched_parity`` fuzz oracle gate this bit-exactly.)

So a gang of N configs partitions into *architectural classes* by
``(rc_model, int_spec, fp_spec)``:

* one **leader** per class (the slot with the largest cycle budget) runs the
  full fast path once, recording a ``(block, iterations)`` execution trace;
* every **follower** replays timing only — scoreboard ready times, mapping
  busy times, group packing, stalls, redirects — against the leader's
  branch outcomes, never touching a register value, and copies the leader's
  final architectural state.

Follower state (scoreboards, map busy times, stats counters) is laid out in
flat per-slot arrays.  Two backends exist behind a feature probe: the
default pure-Python struct-of-arrays layout, and an optional NumPy layout
(int64 scoreboards, vectorized signature gathers and memo-effect
application) used only when NumPy is importable — the repo keeps its
stdlib-only guarantee.  ``benchmarks/bench_simspeed.py`` measures both and
records which wins.

Followers accelerate hot self-loop blocks with the PR-3 signature idea
generalized to mapped operands: an iteration's timing effect is memoized
keyed on ``(map_en, map contents, clamped busy deltas, clamped ready
deltas)``, and once the signature stream becomes periodic the replay
fast-forwards whole periods in O(1).  Slots that fault or exhaust their
cycle budget retire from the gang without disturbing the others; shapes the
replayer cannot prove (``mtpsw``, branch-to-fall-through, an unsupported
codegen shape, a faulting leader, ``until_cycle`` segmenting) delegate to
per-slot :class:`~repro.sim.fastpath.FastSimulator` runs so results are
always bit-exact.
"""

from __future__ import annotations

import os
from array import array
from collections import Counter
from dataclasses import dataclass

from repro.errors import ConfigError, CycleBudgetError, SimulationError
from repro.isa.registers import RClass
from repro.rc.models import RCModel
from repro.sim.core import (
    K_ALU,
    K_CALL,
    K_CBR,
    K_CONNECT,
    K_HALT,
    K_JMP,
    K_LI,
    K_LOAD,
    K_MFMAP,
    K_MFPSW,
    K_MTPSW,
    K_NOP,
    K_RET,
    K_RTE,
    K_STORE,
    K_TRAP,
    SimResult,
    _SRC_IMM,
    _SRC_INT,
)
from repro.sim.fastpath import (
    FastSimulator,
    program_blocks,
)
from repro.sim.machine import MachineState
from repro.sim.stats import SimStats

__all__ = [
    "BACKEND_ENV",
    "BatchedSimulator",
    "GangOutcome",
    "numpy_available",
    "resolve_backend",
    "simulate_gang",
]

#: Environment variable selecting the follower state backend.
BACKEND_ENV = "REPRO_BATCH_BACKEND"

VALID_BACKENDS = ("python", "numpy")

#: Instruction kinds a follower may memoize inside a self-loop block.  Unlike
#: the PR-3 bundle cache, mapped operands are allowed: the signature carries
#: the map contents, so the timing replay stays sound under connects and
#: automatic resets.
_GANG_MEMO_KINDS = frozenset({
    K_ALU, K_LI, K_LOAD, K_STORE, K_NOP, K_CBR, K_CONNECT, K_MFPSW, K_MFMAP,
})

#: Bound on the per-iteration signature footprint (map slots + registers).
#: Signature cost is O(slots) per iteration — still far below stepping the
#: block — so this only guards against pathological register fan-out.
_GANG_MAX_SLOTS = 512

#: Bound on the body length of a memoizable self-loop block.
_GANG_MAX_BODY = 256

#: Per-plan memo cap, mirroring the PR-3 bundle-cache cap.
_GANG_MEMO_CAP = 512

_POISON_MSG = ("cannot resume a simulator after a failed run: "
               "architectural state is no longer consistent")

_np_probe: list | None = None

def numpy_available() -> bool:
    """Feature probe: is NumPy importable?  Never a hard dependency."""
    global _np_probe
    if _np_probe is None:
        try:
            import numpy  # noqa: F401 - probe only

            _np_probe = [numpy]
        except ImportError:  # pragma: no cover - depends on environment
            _np_probe = []
    return bool(_np_probe)


def _numpy():
    return _np_probe[0] if numpy_available() else None


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a follower-state backend request.

    ``None``/``""``/``"auto"`` defer to :data:`BACKEND_ENV` and fall back to
    the pure-Python layout (the default: no dependency, and the benchmark
    records which backend actually wins).  ``"numpy"`` requires NumPy to be
    importable.
    """
    if backend in (None, "", "auto"):
        backend = os.environ.get(BACKEND_ENV, "").strip() or "python"
    if backend not in VALID_BACKENDS:
        raise ConfigError(
            f"unknown batched backend {backend!r}; "
            f"expected one of {VALID_BACKENDS}")
    if backend == "numpy" and not numpy_available():
        raise ConfigError(
            "batched backend 'numpy' requested but numpy is not importable")
    return backend


@dataclass
class GangOutcome:
    """Per-slot result of a gang run.

    Exactly one of ``result`` / ``error`` is set.  ``ran_batched`` reports
    whether the slot was produced by the lockstep replay engine (leader or
    follower) or by a delegated per-slot fast-path run.
    """

    slot: int
    config: object
    result: SimResult | None
    error: BaseException | None
    ran_batched: bool

    @property
    def ok(self) -> bool:
        return self.error is None


# -- follower replay plan -------------------------------------------------------

class _Plan:
    """Static memoization plan for one qualifying self-loop block."""

    __slots__ = ("idx", "lead", "body", "map_slots", "op_slots", "statics")

    def __init__(self, idx, lead, body, map_slots, op_slots, statics):
        self.idx = idx
        self.lead = lead
        self.body = body
        #: every map entry the block touches: operand slots + connect targets
        #: (is_int, is_read, index); snapshotted into memo effects.
        self.map_slots = map_slots
        #: operand subset whose contents/busy/ready feed the signature.
        self.op_slots = op_slots
        #: statically known physical registers reachable by the iteration:
        #: unmapped operands, home locations of mapped operands (automatic
        #: resets), and connect target registers.
        self.statics = statics


def _connect_targets(dec, ient, fent):
    """Mapping-table slots whose content can ever leave its home mapping.

    Only CONNECT writes a non-home value into a map entry; automatic resets
    write homes, except WRITE_RESET_READ_UPDATE which copies the write-map
    content into the read map — hence the write→read closure.  Every slot
    outside this set provably holds its home mapping with zero busy time
    forever, so signatures/snapshots can skip it (its register timing is
    covered by the static ready entry for the home register).
    """
    targ: set = set()
    for d in dec:
        if d.kind == K_CONNECT:
            for rclass, which, idx, phys in d.updates:
                targ.add((rclass is RClass.INT, which == "read", idx))
    for is_int, is_read, idx in list(targ):
        if not is_read:
            targ.add((is_int, True, idx))
    return targ


def _block_slots(dec, body, ient, fent, targ):
    """``(op_slots, map_slots, statics)`` for a block, or ``None`` when a
    kind outside the memoizable set appears in the body.

    ``op_slots`` feed the signature (content + busy + ready of the mapped
    physical register) and cover only connect-targetable slots — untargeted
    slots always map home with no busy time, so the statics entry for the
    home register already captures their timing.  ``map_slots`` extends
    op_slots with targetable entries the block *writes* without reading —
    connect targets and the read-map entry of a mapped destination
    (read-updating reset models rewrite it) — so the effect snapshot
    restores every table entry the block can change.  ``statics`` are
    physical registers reachable without a live map entry: operand payloads,
    home locations, connect target registers.
    """
    opset: dict = {}
    cnset: dict = {}
    stat: dict = {}
    for k in body:
        d = dec[k]
        if d.kind not in _GANG_MEMO_KINDS and d.kind != K_JMP:
            return None
        for mode, payload in d.srcs:
            if mode == _SRC_IMM:
                continue
            is_int = mode == _SRC_INT
            if (payload < (ient if is_int else fent)
                    and (is_int, True, payload) in targ):
                opset[(is_int, True, payload)] = True
            stat[(is_int, payload)] = True
        if d.dest is not None:
            is_int, num = d.dest
            if num < (ient if is_int else fent):
                if (is_int, False, num) in targ:
                    opset[(is_int, False, num)] = True
                if (is_int, True, num) in targ:
                    cnset[(is_int, True, num)] = True
            stat[(is_int, num)] = True
        if d.kind == K_CONNECT:
            for rclass, which, idx, phys in d.updates:
                is_int = rclass is RClass.INT
                cnset[(is_int, which == "read", idx)] = True
                stat[(is_int, phys)] = True
    op_slots = tuple(opset)
    map_slots = op_slots + tuple(k for k in cnset if k not in opset)
    statics = tuple(stat)
    if len(map_slots) + len(statics) > _GANG_MAX_SLOTS:
        return None
    return op_slots, map_slots, statics


def _build_plans(dec, blocks, ient, fent, targ):
    """Memoization plans for every qualifying self-loop block."""
    plans = [None] * len(dec)
    plan_list = []
    for lead, body in blocks:
        term = dec[body[-1]]
        if term.kind != K_CBR or not term.pred_taken or term.target != lead:
            continue
        if not 2 <= len(body) <= _GANG_MAX_BODY:
            continue
        slots = _block_slots(dec, body, ient, fent, targ)
        if slots is None:
            continue
        op_slots, map_slots, statics = slots
        plan = _Plan(len(plan_list), lead, tuple(body), map_slots, op_slots,
                     statics)
        plans[lead] = plan
        plan_list.append(plan)
    return plans, plan_list


class _BInfo:
    """Static dispatch-memo info for one non-self-loop block.

    One *dispatch* is a single pass over the block — entry fetch through the
    control transfer (or fall-through) into the next block, spanning any
    stall groups in between.  Its timing depends only on the follower's
    scoreboard / mapping-table signature at entry, the issue-group state
    carried in, and (for conditional terminators) the branch outcome from
    the leader trace, so each dispatch is memoizable as one effect keyed on
    ``(group state, outcome, slot signature)``.
    """

    __slots__ = ("idx", "lead", "map_slots", "op_slots", "statics",
                 "term_kind", "term_target", "fall")

    def __init__(self, idx, lead, map_slots, op_slots, statics,
                 term_kind, term_target, fall):
        self.idx = idx
        self.lead = lead
        self.map_slots = map_slots
        self.op_slots = op_slots
        self.statics = statics
        self.term_kind = term_kind
        self.term_target = term_target
        self.fall = fall


def _build_binfo(dec, blocks, ient, fent, targ, plans):
    """Dispatch-memo info for every qualifying non-self-loop block.

    Self-loop blocks are excluded: the iteration-level plans plus period
    fast-forward cover them far better, and their many-iterations-per-trace-
    entry bookkeeping does not fit the one-dispatch-per-trace-entry model.
    """
    binfo = [None] * len(dec)
    binfo_list = []
    for lead, body in blocks:
        if plans[lead] is not None or len(body) > _GANG_MAX_BODY:
            continue
        term = dec[body[-1]]
        tk = term.kind
        if (tk == K_CBR or tk == K_JMP) and term.target == lead:
            continue
        slots = _block_slots(dec, body, ient, fent, targ)
        if slots is None:
            continue
        op_slots, map_slots, statics = slots
        bi = _BInfo(len(binfo_list), lead, map_slots, op_slots, statics,
                    tk, term.target if (tk == K_CBR or tk == K_JMP) else None,
                    body[-1] + 1)
        binfo[lead] = bi
        binfo_list.append(bi)
    return binfo, binfo_list


class _Seg:
    """A periodic trace segment: ``width`` consecutive trace entries exactly
    repeated ``reps`` times starting at a fixed trace position.

    The leader trace pins control flow, so within the repetition the only
    evolving follower state is the union timing footprint of the member
    blocks — the same signature/period argument the self-loop plans use, one
    level up.  A follower crossing a macro-iteration boundary with a
    signature it has seen before fast-forwards whole periods of the segment
    in O(slots).
    """

    __slots__ = ("start", "width", "reps", "end", "map_slots", "op_slots",
                 "statics", "idx")

    def __init__(self, idx, start, width, reps, map_slots, op_slots,
                 statics):
        self.idx = idx
        self.start = start
        self.width = width
        self.reps = reps
        self.end = start + width * reps
        self.map_slots = map_slots
        self.op_slots = op_slots
        self.statics = statics


_SEG_MAX_WIDTH = 12
_SEG_MIN_REPS = 4


def _find_segments(tp, tn, binfo, plans):
    """Greedy left-to-right scan for exactly-repeating trace windows whose
    member blocks all have a static timing footprint (dispatch-memoizable or
    self-loop plan).  Returns ``({start_t: _Seg}, [segments])``.
    """
    n = len(tp)
    segs: dict = {}
    seg_list: list = []
    i = 0
    while i < n:
        found = None
        for w in range(1, _SEG_MAX_WIDTH + 1):
            if i + 2 * w > n:
                break
            # Scalar pre-check: almost every (position, width) pair in an
            # irregular trace fails on its first element, so reject with
            # two indexed loads before paying for four slice allocations.
            if tp[i] != tp[i + w] or tn[i] != tn[i + w]:
                continue
            if tp[i:i + w] == tp[i + w:i + 2 * w] and \
                    tn[i:i + w] == tn[i + w:i + 2 * w]:
                win_p = tp[i:i + w]
                win_n = tn[i:i + w]
                r = 2
                j = i + 2 * w
                while (j + w <= n and tp[j:j + w] == win_p
                       and tn[j:j + w] == win_n):
                    r += 1
                    j += w
                found = (w, r)
                break
        if found is not None and found[1] >= _SEG_MIN_REPS:
            w, r = found
            members = [binfo[p] or plans[p]
                       for p in dict.fromkeys(tp[i:i + w])]
            if all(b is not None for b in members):
                opset = dict.fromkeys(
                    s for b in members for s in b.op_slots)
                cnset = dict.fromkeys(
                    s for b in members for s in b.map_slots
                    if s not in opset)
                stat = dict.fromkeys(
                    s for b in members for s in b.statics)
                if len(opset) + len(cnset) + len(stat) <= _GANG_MAX_SLOTS:
                    op_slots = tuple(opset)
                    seg = _Seg(len(seg_list), i, w, r,
                               op_slots + tuple(cnset), op_slots,
                               tuple(stat))
                    segs[i] = seg
                    seg_list.append(seg)
                    i += w * r
                    continue
        i += 1
    return segs, seg_list


class _ReplayContext:
    """Per-class immutable inputs shared by every follower replay.

    Everything except the trace and its segment index depends only on
    ``(dec, ient, fent)`` — the gang's classes share those (they differ
    only by RC model), so callers pass the first class's ``tables`` back
    in and skip the plan/block analysis for the rest.
    """

    __slots__ = ("program", "dec", "n", "tp", "tn", "lflags", "plans",
                 "plan_list", "binfo", "binfo_list", "segs", "seg_list",
                 "trapdst", "ient", "fent", "tables")

    def __init__(self, program, dec, trace, ient, fent, tables=None):
        self.program = program
        self.dec = dec
        self.n = len(dec)
        self.tp, self.tn = trace
        if tables is None:
            blocks = program_blocks(program, dec)
            flags = bytearray(self.n)
            for lead, _body in blocks:
                flags[lead] = 1
            targ = _connect_targets(dec, ient, fent)
            plans, plan_list = _build_plans(dec, blocks, ient, fent, targ)
            binfo, binfo_list = _build_binfo(dec, blocks, ient, fent, targ,
                                             plans)
            trapdst = [program.trap_handlers.get(d.imm)
                       if d.kind == K_TRAP else None for d in dec]
            tables = (flags, plans, plan_list, binfo, binfo_list, trapdst)
        self.tables = tables
        (self.lflags, self.plans, self.plan_list, self.binfo,
         self.binfo_list, self.trapdst) = tables
        self.segs, self.seg_list = _find_segments(self.tp, self.tn,
                                                  self.binfo, self.plans)
        self.ient = ient
        self.fent = fent


def _replay_supported(dec) -> bool:
    """Static scan for shapes the trace-driven replay cannot disambiguate.

    ``mtpsw`` derives control state from a register *value* (followers never
    have values), and a conditional branch targeting its own fall-through
    reaches the same next block either way, hiding the taken/not-taken
    distinction (which still matters for mispredict/redirect accounting).
    """
    for k, d in enumerate(dec):
        if d.kind == K_MTPSW:
            return False
        if d.kind == K_CBR and d.target == k + 1:
            return False
    return True


def _replay(ctx: _ReplayContext, cfg, np_mod):
    """Timing-only replay of the leader trace under follower config *cfg*.

    Mirrors the reference engine's group loop (:meth:`Simulator.run`) branch
    for branch — budget check, operand interlocks, structural hazards,
    redirects, zero-issue accounting — with branch outcomes forced from the
    leader trace instead of computed values.  Returns
    ``(cycles, zero_issue, mispredicts, mem_stalls, redirects)``.
    """
    dec = ctx.dec
    n = ctx.n
    tp = ctx.tp
    tn = ctx.tn
    ntr = len(tp)
    lflags = ctx.lflags
    plans = ctx.plans
    trapdst = ctx.trapdst
    ient = ctx.ient
    fent = ctx.fent

    W = cfg.issue_width
    CH = cfg.mem_channels
    RD = cfg.redirect_penalty
    maxc = cfg.max_cycles
    CL = cfg.latency.connect
    model = cfg.rc_model
    read_reset = model.resets_read_map_on_read
    # after_write behavior, flattened to an int switch.
    if model is RCModel.NO_RESET:
        wmode = 0
    elif model in (RCModel.WRITE_RESET, RCModel.READ_RESET):
        wmode = 1
    elif model is RCModel.WRITE_RESET_READ_UPDATE:
        wmode = 2
    else:  # READ_WRITE_RESET
        wmode = 3
    lat = [cfg.latency.of(d.op) for d in dec]
    lmax = max(max(lat, default=0), CL, 1)
    # Signature packing: clamped deltas live in [0, lmax] and map contents
    # are physical indices, so each operand slot packs injectively into a
    # single int when lmax fits 6 bits — one tuple element per slot instead
    # of three makes the memo keys much cheaper to build, hash and compare.
    pk = lmax < 64

    # -- per-slot state (struct-of-arrays across the gang) ---------------------
    if np_mod is not None:
        iready = np_mod.zeros(cfg.int_spec.total, dtype=np_mod.int64)
        fready = np_mod.zeros(cfg.fp_spec.total, dtype=np_mod.int64)
    else:
        iready = [0] * cfg.int_spec.total
        fready = [0] * cfg.fp_spec.total
    imr_r = [0] * ient
    imr_w = [0] * ient
    fmr_r = [0] * fent
    fmr_w = [0] * fent
    irm = list(range(ient))
    iwm = list(range(ient))
    frm = list(range(fent))
    fwm = list(range(fent))
    home_i = range(ient)
    home_f = range(fent)
    ra: list[int] = []
    ts: list[tuple[int, int]] = []
    map_en = True
    rc_mode = cfg.has_rc

    # -- per-plan / per-block, per-follower resolution --------------------------
    def _resolve_refs(op_slots, extra_slots, statics):
        op_refs = []
        for is_int, is_read, idx in op_slots:
            if is_int:
                content = irm if is_read else iwm
                busy = imr_r if is_read else imr_w
                ready = iready
            else:
                content = frm if is_read else fwm
                busy = fmr_r if is_read else fmr_w
                ready = fready
            op_refs.append((content, busy, ready, idx))
        cn_refs = []
        for is_int, is_read, idx in extra_slots:
            if is_int:
                content = irm if is_read else iwm
                busy = imr_r if is_read else imr_w
            else:
                content = frm if is_read else fwm
                busy = fmr_r if is_read else fmr_w
            cn_refs.append((content, busy, idx))
        stat_refs = [(iready if is_int else fready, ph)
                     for is_int, ph in statics]
        return op_refs, cn_refs, stat_refs

    gates = []
    memos: list[dict] = []
    prefs = []
    for p in ctx.plan_list:
        gates.append(maxc - (len(p.body) * (lmax + 3) + RD + 4))
        memos.append({})
        prefs.append(_resolve_refs(p.op_slots, p.map_slots[len(p.op_slots):],
                                   p.statics))

    binfo = ctx.binfo
    bmemos: list[dict] = []
    bprefs = []
    for b in ctx.binfo_list:
        bmemos.append({})
        bprefs.append(_resolve_refs(b.op_slots, b.map_slots[len(b.op_slots):],
                                    b.statics))

    segs = ctx.segs
    sprefs = []
    for sg in ctx.seg_list:
        sprefs.append(_resolve_refs(sg.op_slots,
                                    sg.map_slots[len(sg.op_slots):],
                                    sg.statics))
    sact = None
    sseen: dict = {}

    def _pack_writes():
        if np_mod is None:
            wr = tuple((iready if ii else fready, j, rel)
                       for ii, j, rel in rec_w)
        else:
            wr = (
                np_mod.array([j for ii, j, _ in rec_w if ii],
                             dtype=np_mod.int64),
                np_mod.array([rel for ii, _, rel in rec_w if ii],
                             dtype=np_mod.int64),
                np_mod.array([j for ii, j, _ in rec_w if not ii],
                             dtype=np_mod.int64),
                np_mod.array([rel for ii, _, rel in rec_w if not ii],
                             dtype=np_mod.int64),
            )
        bw = []
        for ii, ir, j, rel in rec_b:
            if ii:
                bw.append((imr_r if ir else imr_w, j, rel))
            else:
                bw.append((fmr_r if ir else fmr_w, j, rel))
        return wr, tuple(bw)

    def _snap(op_refs, cn_refs):
        return tuple(
            (content, idx, content[idx])
            for content, _b, _r, idx in op_refs
        ) + tuple(
            (content, idx, content[idx])
            for content, _b, idx in cn_refs
        )

    # -- trace cursor -----------------------------------------------------------
    t = 0
    cur_lead = tp[0]
    reps = tn[0]

    pc = ctx.program.entry
    cycle = 0
    st0 = 0  # zero-issue cycles
    st1 = 0  # mispredicts
    st2 = 0  # mem-channel stalls
    st3 = 0  # redirect cycles
    halted = False

    # -- recording state (a plan-block iteration or a block dispatch) -----------
    rec_plan = None
    rec_bi = None
    rec_on = False
    rec_key: tuple = ()
    rec_c0 = rec_z0 = rec_m0 = rec_p0 = rec_r0 = 0
    rec_w: list = []
    rec_b: list = []

    while not halted:
        if cycle > maxc:
            raise CycleBudgetError(f"exceeded {maxc} cycles at pc={pc}")

        # -- memoized self-loop fast path -------------------------------------
        plan = plans[pc]
        if (plan is not None and not rec_on and pc == cur_lead
                and reps > 1):
            pi = plan.idx
            gate = gates[pi]
            memo = memos[pi]
            op_refs, cn_refs, stat_refs = prefs[pi]
            seen: dict | None = {}
            while reps > 1 and cycle < gate:
                parts = [map_en]
                ap = parts.append
                if pk:
                    for content, busy, ready, idx in op_refs:
                        c = content[idx]
                        v = busy[idx] - cycle
                        b = v if v > 0 else 0
                        v = ready[c if map_en else idx] - cycle
                        ap(c << 12 | b << 6 | (v if v > 0 else 0))
                else:
                    for content, busy, ready, idx in op_refs:
                        c = content[idx]
                        ap(c)
                        v = busy[idx] - cycle
                        ap(v if v > 0 else 0)
                        v = ready[c if map_en else idx] - cycle
                        ap(v if v > 0 else 0)
                for ready, ph in stat_refs:
                    v = ready[ph] - cycle
                    ap(v if v > 0 else 0)
                sig = tuple(parts)
                e = memo.get(sig)
                if e is None:
                    if len(memo) < _GANG_MEMO_CAP:
                        rec_plan = plan
                        rec_on = True
                        rec_key = sig
                        rec_c0 = cycle
                        rec_z0 = st0
                        rec_m0 = st2
                        rec_w = []
                        rec_b = []
                    break
                if seen is not None:
                    prev = seen.get(sig)
                    if prev is None:
                        seen[sig] = (reps, cycle, st0, st2)
                    else:
                        p_reps = prev[0] - reps
                        p_dc = cycle - prev[1]
                        if p_reps > 0 and p_dc > 0:
                            q = (reps - 1) // p_reps
                            cap = (gate - 1 - cycle) // p_dc
                            if cap < q:
                                q = cap
                            if q > 0:
                                p_dz = st0 - prev[2]
                                p_dm = st2 - prev[3]
                                # Periodic slots keep their clamped offsets;
                                # decayed (<=0) slots stay behaviorally
                                # equivalent pinned at the new cycle.
                                resync = []
                                for content, busy, ready, idx in op_refs:
                                    v = busy[idx] - cycle
                                    resync.append(
                                        (busy, idx, v if v > 0 else 0))
                                    j = content[idx] if map_en else idx
                                    v = ready[j] - cycle
                                    resync.append(
                                        (ready, j, v if v > 0 else 0))
                                for content, busy, idx in cn_refs:
                                    v = busy[idx] - cycle
                                    resync.append(
                                        (busy, idx, v if v > 0 else 0))
                                for ready, ph in stat_refs:
                                    v = ready[ph] - cycle
                                    resync.append(
                                        (ready, ph, v if v > 0 else 0))
                                cycle += q * p_dc
                                st0 += q * p_dz
                                st2 += q * p_dm
                                reps -= q * p_reps
                                for arr, j, d in resync:
                                    arr[j] = cycle + d
                        seen = None
                        continue
                # apply the recorded iteration effect
                if np_mod is None:
                    for arr, j, rel in e[3]:
                        arr[j] = cycle + rel
                else:
                    iph, irel, fph, frel = e[3]
                    if len(iph):
                        iready[iph] = cycle + irel
                    if len(fph):
                        fready[fph] = cycle + frel
                for arr, j, rel in e[4]:
                    arr[j] = cycle + rel
                for arr, j, ph in e[5]:
                    arr[j] = ph
                st0 += e[1]
                st2 += e[2]
                cycle += e[0]
                reps -= 1

        issued = 0
        mem_used = 0
        store_seen = False
        next_cycle = cycle + 1

        while issued < W:
            if pc >= n:
                raise SimulationError(f"fell off program end at pc={pc}")
            if lflags[pc] and (pc != cur_lead or reps <= 0):
                t += 1
                if t >= ntr or tp[t] != pc:
                    raise SimulationError(
                        f"gang replay diverged from leader trace at pc={pc}")
                cur_lead = pc
                reps = tn[t]
                if rec_bi is not None:
                    # Finalize the dispatch recorded since the previous block
                    # entry: the current fetch point is its exit state.
                    wr, bw = _pack_writes()
                    op_refs, cn_refs, _stat = bprefs[rec_bi.idx]
                    bmemos[rec_bi.idx][rec_key] = (
                        cycle - rec_c0, st0 - rec_z0, st1 - rec_p0,
                        st2 - rec_m0, st3 - rec_r0, wr, bw,
                        _snap(op_refs, cn_refs),
                        pc, issued, mem_used, store_seen)
                    rec_bi = None
                    rec_on = False
                # -- periodic trace-segment fast-forward ----------------------
                if sact is not None and t >= sact.end:
                    sact = None
                if sact is None:
                    sact = segs.get(t)
                    if sact is not None:
                        sseen = {}
                if sact is not None and (t - sact.start) % sact.width == 0:
                    op_refs, cn_refs, stat_refs = sprefs[sact.idx]
                    parts = [issued, mem_used, store_seen, map_en]
                    ap = parts.append
                    if pk:
                        for content, busy, ready, idx in op_refs:
                            c = content[idx]
                            v = busy[idx] - cycle
                            b = v if v > 0 else 0
                            v = ready[c if map_en else idx] - cycle
                            ap(c << 12 | b << 6 | (v if v > 0 else 0))
                    else:
                        for content, busy, ready, idx in op_refs:
                            c = content[idx]
                            ap(c)
                            v = busy[idx] - cycle
                            ap(v if v > 0 else 0)
                            v = ready[c if map_en else idx] - cycle
                            ap(v if v > 0 else 0)
                    for ready, ph in stat_refs:
                        v = ready[ph] - cycle
                        ap(v if v > 0 else 0)
                    ssig = tuple(parts)
                    prev = sseen.get(ssig)
                    if prev is None:
                        sseen[ssig] = (t, cycle, st0, st1, st2, st3)
                    else:
                        p_t = t - prev[0]
                        p_dc = cycle - prev[1]
                        if p_t > 0 and p_dc > 0:
                            done = (t - sact.start) // sact.width
                            q = ((sact.reps - done - 1)
                                 // (p_t // sact.width))
                            cap = (maxc - cycle) // p_dc
                            if cap < q:
                                q = cap
                            if q > 0:
                                p_d0 = st0 - prev[2]
                                p_d1 = st1 - prev[3]
                                p_d2 = st2 - prev[4]
                                p_d3 = st3 - prev[5]
                                resync = []
                                for content, busy, ready, idx in op_refs:
                                    v = busy[idx] - cycle
                                    resync.append(
                                        (busy, idx, v if v > 0 else 0))
                                    j = content[idx] if map_en else idx
                                    v = ready[j] - cycle
                                    resync.append(
                                        (ready, j, v if v > 0 else 0))
                                for content, busy, idx in cn_refs:
                                    v = busy[idx] - cycle
                                    resync.append(
                                        (busy, idx, v if v > 0 else 0))
                                for ready, ph in stat_refs:
                                    v = ready[ph] - cycle
                                    resync.append(
                                        (ready, ph, v if v > 0 else 0))
                                t += q * p_t
                                cycle += q * p_dc
                                st0 += q * p_d0
                                st1 += q * p_d1
                                st2 += q * p_d2
                                st3 += q * p_d3
                                next_cycle = cycle + 1
                                for arr, j, dlt in resync:
                                    arr[j] = cycle + dlt
                bi = binfo[pc]
                if bi is not None and not rec_on:
                    bmemo = bmemos[bi.idx]
                    op_refs, cn_refs, stat_refs = bprefs[bi.idx]
                    if bi.term_kind == K_CBR:
                        tgt = bi.term_target
                        outcome = t + 1 < ntr and tp[t + 1] == tgt
                    else:
                        outcome = False
                    parts = [issued, mem_used, store_seen, map_en, outcome]
                    ap = parts.append
                    if pk:
                        for content, busy, ready, idx in op_refs:
                            c = content[idx]
                            v = busy[idx] - cycle
                            b = v if v > 0 else 0
                            v = ready[c if map_en else idx] - cycle
                            ap(c << 12 | b << 6 | (v if v > 0 else 0))
                    else:
                        for content, busy, ready, idx in op_refs:
                            c = content[idx]
                            ap(c)
                            v = busy[idx] - cycle
                            ap(v if v > 0 else 0)
                            v = ready[c if map_en else idx] - cycle
                            ap(v if v > 0 else 0)
                    for ready, ph in stat_refs:
                        v = ready[ph] - cycle
                        ap(v if v > 0 else 0)
                    key = tuple(parts)
                    e = bmemo.get(key)
                    if e is not None:
                        # Exit cycle bounds every group-start cycle inside
                        # the dispatch, so one budget check covers them all.
                        if cycle + e[0] <= maxc:
                            if np_mod is None:
                                for arr, j, rel in e[5]:
                                    arr[j] = cycle + rel
                            else:
                                iph, irel, fph, frel = e[5]
                                if len(iph):
                                    iready[iph] = cycle + irel
                                if len(fph):
                                    fready[fph] = cycle + frel
                            for arr, j, rel in e[6]:
                                arr[j] = cycle + rel
                            for arr, j, ph in e[7]:
                                arr[j] = ph
                            cycle += e[0]
                            st0 += e[1]
                            st1 += e[2]
                            st2 += e[3]
                            st3 += e[4]
                            next_cycle = cycle + 1
                            pc = e[8]
                            issued = e[9]
                            mem_used = e[10]
                            store_seen = e[11]
                            continue
                    elif len(bmemo) < _GANG_MEMO_CAP:
                        rec_bi = bi
                        rec_on = True
                        rec_key = key
                        rec_c0 = cycle
                        rec_z0 = st0
                        rec_p0 = st1
                        rec_m0 = st2
                        rec_r0 = st3
                        rec_w = []
                        rec_b = []
            d = dec[pc]
            kind = d.kind

            # ---- operand resolution through the mapping table ----
            block = 0
            for mode, payload in d.srcs:
                if mode == _SRC_INT:
                    if map_en and payload < ient:
                        r = imr_r[payload]
                        if r > cycle and r > block:
                            block = r
                        phys = irm[payload]
                    else:
                        phys = payload
                    r = iready[phys]
                    if r > cycle and r > block:
                        block = r
                elif mode != _SRC_IMM:
                    if map_en and payload < fent:
                        r = fmr_r[payload]
                        if r > cycle and r > block:
                            block = r
                        phys = frm[payload]
                    else:
                        phys = payload
                    r = fready[phys]
                    if r > cycle and r > block:
                        block = r

            dest = d.dest
            if dest is not None:
                dest_is_int, num = dest
                if dest_is_int:
                    if map_en and num < ient:
                        r = imr_w[num]
                        if r > cycle and r > block:
                            block = r
                        physd = iwm[num]
                    else:
                        physd = num
                    r = iready[physd]
                else:
                    if map_en and num < fent:
                        r = fmr_w[num]
                        if r > cycle and r > block:
                            block = r
                        physd = fwm[num]
                    else:
                        physd = num
                    r = fready[physd]
                if r > cycle and r > block:
                    block = r

            if block > cycle:
                if issued == 0:
                    next_cycle = block
                break

            # ---- structural hazards ----
            if kind == K_LOAD or kind == K_STORE:
                if mem_used >= CH:
                    st2 += 1
                    break
                if kind == K_LOAD and store_seen:
                    break
                mem_used += 1

            # ---- issue ----
            issued += 1
            if pc == cur_lead:
                reps -= 1
            if read_reset and map_en:
                for mode, payload in d.srcs:
                    if mode == _SRC_INT and payload < ient:
                        irm[payload] = payload
                    elif mode != _SRC_IMM and payload < fent:
                        frm[payload] = payload
            advance = True

            if kind == K_CBR:
                tgt = d.target
                if tgt == cur_lead:
                    taken = reps > 0
                    if rec_plan is not None:
                        if taken:
                            wr, bw = _pack_writes()
                            pi = rec_plan.idx
                            op_refs, cn_refs, _stat = prefs[pi]
                            memos[pi][rec_key] = (
                                cycle + 1 - rec_c0, st0 - rec_z0,
                                st2 - rec_m0, wr, bw,
                                _snap(op_refs, cn_refs))
                        rec_plan = None
                        rec_on = False
                else:
                    taken = t + 1 < ntr and tp[t + 1] == tgt
                mispredict = taken != d.pred_taken
                if mispredict:
                    st1 += 1
                pc = tgt if taken else pc + 1
                advance = False
                if mispredict:
                    st3 += RD
                    next_cycle = cycle + 1 + RD
                    break
                if taken:
                    break
                continue
            elif kind == K_JMP:
                pc = d.target
                advance = False
                break
            elif kind == K_CALL:
                ra.append(pc + 1)
                if ient:
                    irm[:] = home_i
                    iwm[:] = home_i
                if fent:
                    frm[:] = home_f
                    fwm[:] = home_f
                pc = d.target
                advance = False
                break
            elif kind == K_RET:
                if not ra:
                    raise SimulationError("ret with empty RA stack")
                if ient:
                    irm[:] = home_i
                    iwm[:] = home_i
                if fent:
                    frm[:] = home_f
                    fwm[:] = home_f
                pc = ra.pop()
                advance = False
                break
            elif kind == K_HALT:
                halted = True
                advance = False
                break
            elif kind == K_CONNECT:
                ready_at = cycle + CL
                rel = ready_at - rec_c0 if rec_on else 0
                for rclass, which, idx, phys in d.updates:
                    is_read = which == "read"
                    if rclass is RClass.INT:
                        (irm if is_read else iwm)[idx] = phys
                        (imr_r if is_read else imr_w)[idx] = ready_at
                        if rec_on:
                            rec_b.append((True, is_read, idx, rel))
                    else:
                        (frm if is_read else fwm)[idx] = phys
                        (fmr_r if is_read else fmr_w)[idx] = ready_at
                        if rec_on:
                            rec_b.append((False, is_read, idx, rel))
                pc += 1
                continue
            elif kind == K_TRAP:
                handler = trapdst[pc]
                if handler is None:
                    raise SimulationError(f"no handler for trap {d.imm}")
                packed = (1 if map_en else 0) | (2 if rc_mode else 0)
                ts.append((packed, pc + 1))
                map_en = False
                pc = handler
                advance = False
                st3 += RD
                next_cycle = cycle + 1 + RD
                break
            elif kind == K_RTE:
                if not ts:
                    raise SimulationError("rte with empty trap stack")
                packed, ret_pc = ts.pop()
                map_en = (packed & 1) != 0
                rc_mode = (packed & 2) != 0
                pc = ret_pc
                advance = False
                st3 += RD
                next_cycle = cycle + 1 + RD
                break
            elif kind == K_STORE:
                store_seen = True
            # K_ALU / K_LI / K_LOAD / K_MFPSW / K_MFMAP / K_NOP: value
            # production is the leader's job; only the writeback timing
            # below matters here.

            if dest is not None and kind != K_STORE and kind != K_NOP:
                wb = cycle + lat[pc]
                if dest_is_int:
                    iready[physd] = wb
                    if map_en and num < ient:
                        if wmode == 1:
                            iwm[num] = num
                        elif wmode == 2:
                            irm[num] = iwm[num]
                            iwm[num] = num
                        elif wmode == 3:
                            irm[num] = num
                            iwm[num] = num
                else:
                    fready[physd] = wb
                    if map_en and num < fent:
                        if wmode == 1:
                            fwm[num] = num
                        elif wmode == 2:
                            frm[num] = fwm[num]
                            fwm[num] = num
                        elif wmode == 3:
                            frm[num] = num
                            fwm[num] = num
                if rec_on:
                    rec_w.append((dest_is_int, physd, wb - rec_c0))
            if advance:
                pc += 1

        if issued == 0:
            st0 += next_cycle - cycle
        cycle = next_cycle

    return int(cycle), int(st0), int(st1), int(st2), int(st3)


# -- leader-state cloning -------------------------------------------------------

def _clone_state(src: MachineState, cfg) -> MachineState:
    """Follower architectural state: a deep copy of the leader's final state
    (same class, so every shape matches) bound to the follower's config."""
    dst = MachineState(cfg, None)
    dst.int_regs[:] = src.int_regs
    dst.fp_regs[:] = src.fp_regs
    dst.memory = dict(src.memory)
    dst.psw.map_enable = src.psw.map_enable
    dst.psw.rc_mode = src.psw.rc_mode
    if dst.int_table is not None:
        dst.int_table.read_map[:] = src.int_table.read_map
        dst.int_table.write_map[:] = src.int_table.write_map
    if dst.fp_table is not None:
        dst.fp_table.read_map[:] = src.fp_table.read_map
        dst.fp_table.write_map[:] = src.fp_table.write_map
    dst.ra_stack = list(src.ra_stack)
    dst.trap_stack = list(src.trap_stack)
    return dst


def _follower_stats(leader_stats: SimStats, cycles, st0, st1, st2,
                    st3) -> SimStats:
    stats = SimStats()
    stats.cycles = cycles
    stats.instructions = leader_stats.instructions
    stats.by_category = Counter(leader_stats.by_category)
    stats.by_origin = Counter(leader_stats.by_origin)
    stats.branches = leader_stats.branches
    stats.mispredicts = st1
    stats.zero_issue_cycles = st0
    stats.redirect_cycles = st3
    stats.mem_channel_stalls = st2
    return stats


# -- the gang ------------------------------------------------------------------

class BatchedSimulator:
    """Simulate one program under N machine configs in one pass.

    ``run()`` returns a list of :class:`GangOutcome`, one per config slot in
    input order.  Slots that fault or exhaust their budget carry the
    exception in ``outcome.error``; the rest of the gang is undisturbed.
    A repeated ``run()`` behaves like rerunning each engine: halted slots
    return the same result, failed slots refuse with the engines' poisoned
    diagnostic.  ``run(until_cycle=...)`` segments the whole gang through
    per-slot fast simulators (the replay is whole-run by construction).
    """

    def __init__(self, program, configs, backend: str | None = None) -> None:
        if not configs:
            raise ConfigError("batched gang needs at least one config")
        self.program = program
        self.configs = list(configs)
        self.backend = resolve_backend(backend)
        self._outcomes: list[GangOutcome] | None = None
        self._delegates: list | None = None
        self._poisoned: set[int] = set()
        #: decode lists shared across class leaders, keyed on the config
        #: axes decode actually reads: (latency, int_spec, fp_spec).
        self._shared_dec: list = []
        #: replay tables shared across classes, keyed (id(dec), ient, fent)
        #: — the dec list is pinned by _shared_dec, so ids stay unique.
        self._shared_tables: dict = {}

    @property
    def ran_batched(self) -> bool:
        """Did every slot of the last run go through the lockstep replay?"""
        return bool(self._outcomes) and all(
            o.ran_batched for o in self._outcomes)

    # -- public API -------------------------------------------------------------

    def run(self, until_cycle: int | None = None) -> list[GangOutcome]:
        if self._outcomes is not None and self._delegates is None:
            # Rerun after a completed gang: like rerunning each engine,
            # halted slots return the same result (even under until_cycle —
            # they are already past it) and failed slots refuse.
            return self._rerun()
        if until_cycle is not None or self._delegates is not None:
            return self._run_delegate(until_cycle)
        outcomes: list[GangOutcome] = [None] * len(self.configs)  # type: ignore
        by_class: dict = {}
        for i, cfg in enumerate(self.configs):
            key = (cfg.rc_model, cfg.int_spec, cfg.fp_spec)
            by_class.setdefault(key, []).append(i)
        for slots in by_class.values():
            self._run_class(slots, outcomes)
        self._outcomes = outcomes
        return list(outcomes)

    # -- gang execution ---------------------------------------------------------

    def _run_class(self, slots, outcomes) -> None:
        configs = self.configs
        lead_slot = max(slots, key=lambda s: configs[s].max_cycles)
        lcfg = configs[lead_slot]
        dkey = (lcfg.latency, lcfg.int_spec, lcfg.fp_spec)
        shared = next((d for k, d in self._shared_dec if k == dkey), None)
        try:
            # generic_maps: the class leaders differ only by RC model, so
            # they share one generically-generated compile() with the model
            # selected through const flags (see fastpath._compiled_generic).
            leader = FastSimulator(self.program, lcfg, decoded=shared,
                                   generic_maps=True)
        except Exception as exc:
            # Decode/validation failure is a class property (it depends only
            # on the program and the register specs): every slot raises it.
            for s in slots:
                outcomes[s] = GangOutcome(s, configs[s], None, exc, True)
            return
        if shared is None:
            self._shared_dec.append((dkey, leader._ref._decoded))
        if (leader._compiled_entry is None
                or not _replay_supported(leader._ref._decoded)):
            self._delegate_slots(slots, outcomes)
            return
        trace = (array("q"), array("q"))
        try:
            lres = leader._run_fast(trace=trace)
            leader.ran_fastpath = True
        except Exception as exc:
            leader._ref._failed = True
            outcomes[lead_slot] = GangOutcome(lead_slot, lcfg, None, exc,
                                              True)
            self._poisoned.add(lead_slot)
            rest = [s for s in slots if s != lead_slot]
            if rest:
                self._delegate_slots(rest, outcomes)
            return
        outcomes[lead_slot] = GangOutcome(lead_slot, lcfg, lres, None, True)
        followers = [s for s in slots if s != lead_slot]
        if not followers:
            return
        dec = leader._ref._decoded
        ient = lcfg.int_spec.core if lcfg.int_spec.has_rc else 0
        fent = lcfg.fp_spec.core if lcfg.fp_spec.has_rc else 0
        tkey = (id(dec), ient, fent)
        ctx = _ReplayContext(self.program, dec, trace, ient, fent,
                             tables=self._shared_tables.get(tkey))
        self._shared_tables[tkey] = ctx.tables
        np_mod = _numpy() if self.backend == "numpy" else None
        for s in followers:
            cfg = configs[s]
            try:
                cycles, st0, st1, st2, st3 = _replay(ctx, cfg, np_mod)
            except Exception as exc:
                outcomes[s] = GangOutcome(s, cfg, None, exc, True)
                self._poisoned.add(s)
                continue
            stats = _follower_stats(lres.stats, cycles, st0, st1, st2, st3)
            state = _clone_state(lres.state, cfg)
            outcomes[s] = GangOutcome(
                s, cfg, SimResult(stats=stats, state=state, halted=True),
                None, True)

    # -- delegation -------------------------------------------------------------

    def _delegate_slots(self, slots, outcomes) -> None:
        for s in slots:
            cfg = self.configs[s]
            try:
                sim = FastSimulator(self.program, cfg)
            except Exception as exc:
                # Decode error: reconstructing would raise it again, so a
                # rerun repeats it rather than the poisoned diagnostic.
                outcomes[s] = GangOutcome(s, cfg, None, exc, False)
                continue
            try:
                res = sim.run()
                outcomes[s] = GangOutcome(s, cfg, res, None, False)
            except Exception as exc:
                outcomes[s] = GangOutcome(s, cfg, None, exc, False)
                self._poisoned.add(s)

    def _run_delegate(self, until_cycle) -> list[GangOutcome]:
        if self._delegates is None:
            self._delegates = []
            for cfg in self.configs:
                try:
                    self._delegates.append(FastSimulator(self.program, cfg))
                except Exception as exc:
                    self._delegates.append(exc)
        outs = []
        for i, sim in enumerate(self._delegates):
            cfg = self.configs[i]
            if isinstance(sim, Exception):
                outs.append(GangOutcome(i, cfg, None, sim, False))
                continue
            try:
                res = sim.run(until_cycle)
                outs.append(GangOutcome(i, cfg, res, None, False))
            except Exception as exc:
                outs.append(GangOutcome(i, cfg, None, exc, False))
        self._outcomes = outs
        return list(outs)

    def _rerun(self) -> list[GangOutcome]:
        fresh = []
        for o in self._outcomes:
            if o.slot in self._poisoned:
                err = SimulationError(_POISON_MSG)
                fresh.append(GangOutcome(o.slot, o.config, None, err,
                                         o.ran_batched))
            else:
                fresh.append(o)
        return fresh


def simulate_gang(program, configs, backend: str | None = None,
                  ) -> list[GangOutcome]:
    """Convenience wrapper: one gang run over *configs*."""
    return BatchedSimulator(program, configs, backend=backend).run()
