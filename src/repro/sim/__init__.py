"""Cycle-level superscalar simulator with Register Connection support."""

from repro.sim.config import (
    ENGINE_ENV,
    VALID_ENGINES,
    MachineConfig,
    default_memory_channels,
    paper_machine,
    resolve_engine,
    unlimited_machine,
)
from repro.sim.batched import (
    BACKEND_ENV,
    BatchedSimulator,
    GangOutcome,
    numpy_available,
    resolve_backend,
    simulate_gang,
)
from repro.sim.core import SimResult, Simulator, simulate
from repro.sim.fastpath import FastSimulator
from repro.sim.machine import MachineState
from repro.sim.os_model import ProcessRecord, ScheduleOutcome, TimeSharingSystem
from repro.sim.program import MachineProgram, assemble
from repro.sim.stats import SimStats
from repro.sim.tracing import PipelineTrace, capture_trace

__all__ = [
    "BACKEND_ENV",
    "ENGINE_ENV",
    "VALID_ENGINES",
    "BatchedSimulator",
    "FastSimulator",
    "GangOutcome",
    "MachineConfig",
    "MachineProgram",
    "MachineState",
    "ProcessRecord",
    "ScheduleOutcome",
    "TimeSharingSystem",
    "SimResult",
    "SimStats",
    "Simulator",
    "PipelineTrace",
    "assemble",
    "capture_trace",
    "default_memory_channels",
    "numpy_available",
    "paper_machine",
    "resolve_backend",
    "resolve_engine",
    "simulate",
    "simulate_gang",
    "unlimited_machine",
]
