"""A miniature time-sharing OS model exercising context switching.

Paper section 4.2: programs compiled with the RC extension need core
registers, extended registers, *and* the connection information preserved
across context switches; legacy programs need only the core registers, and
the PSW ``rc_mode`` flag lets the context-switch code choose the cheaper
format.

:class:`TimeSharingSystem` round-robins a set of processes on the resumable
simulator with a fixed cycle quantum.  At every preemption the outgoing
process's context is saved in the format its PSW selects, the register
files and mapping tables are *deliberately scrambled* (standing in for
other processes using the hardware), and the context is restored before the
process next runs.  A context format that forgets any architecturally
visible state therefore corrupts results — the checksum verification at the
end is a real test of section 4.2's scheme, not an accounting exercise.

Each process runs its own :class:`~repro.sim.machine.MachineState`
(modeling per-process address spaces); the scramble/restore cycle is what
models the shared physical register file.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.rc.context import ProcessContext
from repro.sim.config import MachineConfig
from repro.sim.core import Simulator
from repro.sim.program import MachineProgram


@dataclass
class ProcessRecord:
    """Book-keeping for one scheduled process."""

    pid: int
    name: str
    simulator: Simulator
    saved: ProcessContext | None = None
    finished: bool = False
    cycles: int = 0
    switches: int = 0
    context_words: int = 0


@dataclass
class ScheduleOutcome:
    """The result of running a workload mix to completion."""

    processes: list[ProcessRecord]
    total_switches: int = 0
    total_context_words: int = 0

    def process(self, name: str) -> ProcessRecord:
        for proc in self.processes:
            if proc.name == name:
                return proc
        raise KeyError(name)


def _scramble(simulator: Simulator, salt: int) -> None:
    """Trash all architecturally visible register state (another process
    'used' the hardware between our quanta)."""
    state = simulator.state
    for i in range(len(state.int_regs)):
        state.int_regs[i] = -(salt + i) - 1
    for i in range(len(state.fp_regs)):
        state.fp_regs[i] = float(-(salt + i)) - 0.5
    for table in (state.int_table, state.fp_table):
        if table is not None:
            for i in range(table.entries):
                table.connect_use(i, (i + salt) % table.num_physical)
                table.connect_def(i, (i + 2 * salt) % table.num_physical)
    state.psw.map_enable = bool(salt % 2)


class TimeSharingSystem:
    """Round-robin scheduler over resumable simulators."""

    def __init__(self, config: MachineConfig, quantum: int = 500) -> None:
        if quantum < 1:
            raise SimulationError("quantum must be at least one cycle")
        self.config = config
        self.quantum = quantum
        self._processes: list[ProcessRecord] = []

    def add_process(self, program: MachineProgram, name: str | None = None,
                    rc_process: bool | None = None) -> ProcessRecord:
        """Register a process; ``rc_process=False`` marks a legacy binary
        (its context will use the cheaper core-only format)."""
        simulator = Simulator(program, self.config)
        if rc_process is not None:
            simulator.state.psw.rc_mode = rc_process
        record = ProcessRecord(
            pid=len(self._processes),
            name=name or program.name,
            simulator=simulator,
        )
        self._processes.append(record)
        return record

    def run(self, max_switches: int = 1_000_000) -> ScheduleOutcome:
        """Run all processes to completion under round-robin scheduling."""
        outcome = ScheduleOutcome(processes=self._processes)
        switches = 0
        while any(not p.finished for p in self._processes):
            for proc in self._processes:
                if proc.finished:
                    continue
                switches += 1
                if switches > max_switches:
                    raise SimulationError("scheduler exceeded max switches")
                state = proc.simulator.state
                if proc.saved is not None:
                    state.restore_process_context(proc.saved)
                    proc.saved = None
                result = proc.simulator.run(
                    until_cycle=proc.cycles + self.quantum
                )
                proc.cycles = result.stats.cycles
                if result.halted:
                    proc.finished = True
                    continue
                ctx = state.save_process_context()
                proc.saved = ctx
                proc.switches += 1
                proc.context_words += ctx.word_count()
                outcome.total_context_words += ctx.word_count()
                # Another process dirties every register and map entry.
                _scramble(proc.simulator, salt=proc.pid * 7 + proc.switches)
        outcome.total_switches = sum(p.switches for p in self._processes)
        return outcome
