"""Machine-program container executed by the simulator.

A :class:`MachineProgram` is a flat instruction array with all register
operands physical and all control-flow targets resolved to instruction
indices.  The compiler's lowering pass produces these; tests may also build
them by hand with :func:`assemble`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.ir.function import STACK_BASE
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.registers import PhysReg


@dataclass
class MachineProgram:
    """A fully lowered, executable program image."""

    instrs: list[Instr]
    #: Per-instruction resolved control target (instruction index) for
    #: branches, jumps, and calls; ``None`` elsewhere.
    targets: list[int | None]
    initial_memory: dict[int, int | float] = field(default_factory=dict)
    entry: int = 0
    initial_sp: int = STACK_BASE
    #: vector number -> handler instruction index (trap/interrupt table).
    trap_handlers: dict[int, int] = field(default_factory=dict)
    name: str = "program"
    #: function name -> (start, end) instruction index range.
    func_ranges: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: static-checker suppressions from ``; check: ignore=RULE`` assembly
    #: comments: instruction index -> rule ids (-1 applies file-wide).
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.targets) != len(self.instrs):
            raise CompileError("targets array must parallel instrs")
        for i, (instr, target) in enumerate(zip(self.instrs, self.targets)):
            if target is not None and not 0 <= target < len(self.instrs):
                raise CompileError(f"instr {i}: target {target} out of range")
            for reg in instr.regs():
                if not isinstance(reg, PhysReg):
                    raise CompileError(
                        f"instr {i}: unallocated operand {reg!r} in {instr!r}"
                    )

    def __len__(self) -> int:
        return len(self.instrs)

    def static_counts(self) -> Counter:
        """Static instruction counts keyed by origin tag.

        ``None`` (program instructions) plus the compiler-overhead tags
        ``spill``, ``connect``, ``callsave`` and ``frame``; used for the code
        size analysis of Figure 9.
        """
        return Counter(instr.origin for instr in self.instrs)

    def function_of(self, index: int) -> str | None:
        for name, (start, end) in self.func_ranges.items():
            if start <= index < end:
                return name
        return None


def assemble(instrs: list[Instr], labels: dict[str, int] | None = None,
             **kwargs) -> MachineProgram:
    """Build a :class:`MachineProgram` from instructions with textual labels.

    ``labels`` maps label names to instruction indices; every branch, jump or
    call label must resolve.  Convenience for tests and examples.
    """
    labels = labels or {}
    targets: list[int | None] = []
    for i, instr in enumerate(instrs):
        if instr.label is not None and instr.op is not Opcode.RET:
            if instr.label not in labels:
                raise CompileError(f"instr {i}: unresolved label {instr.label!r}")
            targets.append(labels[instr.label])
        else:
            targets.append(None)
    return MachineProgram(instrs=list(instrs), targets=targets, **kwargs)
